// Farm-level events published by GulfStream Central.
//
// "GulfStream Central coordinates the dissemination of failure notifications
// to other interested administrative nodes" (§2.2). In this library the
// dissemination bus is an obs::Bus: any number of subscribers, each with an
// RAII Subscription and an optional per-Kind filter mask.
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "obs/bus.h"
#include "sim/time.h"
#include "util/ids.h"
#include "util/ip.h"

namespace gs::proto {

struct FarmEvent {
  enum class Kind : std::uint8_t {
    kGscActivated = 0,
    kGscDeactivated,
    kInitialTopologyStable,  // GSC heard nothing new for T_GSC (§4.1)
    kAdapterFailed,
    kAdapterRecovered,
    kNodeFailed,      // correlation: all of a node's adapters failed (§3)
    kNodeRecovered,
    kSwitchFailed,    // correlation: all adapters wired to a switch failed
    kSwitchRecovered,
    kMoveInitiated,       // GSC itself reconfigured a port (§3.1)
    kMoveCompleted,       // expected move observed end-to-end; suppressed
    kUnexpectedMove,      // old-group death + new-group join, not initiated
    kInconsistencyFound,  // discovered vs database mismatch (§2.2)
    kAdapterQuarantined,  // inconsistent adapter disabled onto the
                          // quarantine VLAN "for security reasons" (§2.2)
  };

  Kind kind;
  sim::SimTime time = 0;
  // Which Central emitted this (its admin-adapter IP). Partitions can spawn
  // additional per-partition Centrals (§2.2); consumers filter by source.
  util::IpAddress source;
  util::IpAddress ip;        // adapter-scoped events
  util::NodeId node;         // node-scoped events
  util::SwitchId switch_id;  // switch-scoped events
  util::VlanId vlan;         // move target / inconsistency VLAN
  std::string detail;
};

static_assert(static_cast<unsigned>(FarmEvent::Kind::kAdapterQuarantined) < 64,
              "FarmEvent::Kind must fit a 64-bit subscription mask");

[[nodiscard]] std::string_view to_string(FarmEvent::Kind kind);

// Multi-subscriber dissemination bus; subscribe(...) returns an RAII
// Subscription. EventLog replaces the old hand-wired chronological vector.
using EventBus = obs::Bus<FarmEvent>;
using EventLog = obs::Recorder<FarmEvent>;

inline constexpr std::uint64_t kAllEvents = obs::kAllKinds;

[[nodiscard]] constexpr std::uint64_t event_bit(FarmEvent::Kind kind) {
  return obs::kind_bit(kind);
}

}  // namespace gs::proto
