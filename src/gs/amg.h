// Adapter Membership Group view.
//
// An immutable committed membership: a view number plus the member list in
// rank order — descending IP, so rank 0 is the leader ("the adapter with
// the highest IP address", §2.1). The same order serves three purposes:
//  * leader identity (rank 0),
//  * leader succession ("notification is sent to the second ranked
//    adapter", §2.1) — rank 1, 2, ... in turn,
//  * the logical heartbeat ring (§3): rank i's right neighbor is rank i+1
//    (mod n), left neighbor is rank i-1 (mod n).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "gs/messages.h"
#include "util/check.h"
#include "util/ip.h"

namespace gs::proto {

class MembershipView {
 public:
  MembershipView() = default;

  // Sorts descending by IP and drops duplicate IPs (keeping the first).
  static MembershipView make(std::uint64_t view,
                             std::vector<MemberInfo> members);

  [[nodiscard]] std::uint64_t view() const { return view_; }
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] bool empty() const { return members_.empty(); }

  [[nodiscard]] const std::vector<MemberInfo>& members() const {
    return members_;
  }

  [[nodiscard]] const MemberInfo& leader() const {
    GS_CHECK(!members_.empty());
    return members_.front();
  }

  [[nodiscard]] bool contains(util::IpAddress ip) const {
    return rank_of(ip).has_value();
  }

  // Rank (0-based position in descending-IP order), if a member.
  [[nodiscard]] std::optional<std::size_t> rank_of(util::IpAddress ip) const;

  [[nodiscard]] const MemberInfo& member_at(std::size_t rank) const {
    GS_CHECK(rank < members_.size());
    return members_[rank];
  }

  // Ring neighbors of `ip` (undefined for non-members — checked). In a
  // group of one or two these can equal `ip` itself / each other; the
  // failure detectors handle those degenerate rings.
  [[nodiscard]] util::IpAddress right_of(util::IpAddress ip) const;
  [[nodiscard]] util::IpAddress left_of(util::IpAddress ip) const;

  [[nodiscard]] std::vector<util::IpAddress> ips() const;

  // Order-sensitive FNV-1a fingerprint of the member IPs (view number
  // excluded): two views hash equal iff their compositions are identical,
  // which is what health samples report so an operator can tell membership
  // churn from mere view-number churn.
  [[nodiscard]] std::uint64_t ips_hash() const;

  bool operator==(const MembershipView&) const = default;

 private:
  std::uint64_t view_ = 0;
  std::vector<MemberInfo> members_;
};

}  // namespace gs::proto
