// GulfStream Central — the root of the reporting hierarchy.
//
// The node whose administrative adapter currently leads the administrative
// AMG activates its Central instance (§2.2). Central:
//  * consumes MembershipReports from all AMG leaders and maintains the
//    farm-wide adapter/group view (full snapshots establish a group, deltas
//    maintain it; sequence gaps trigger a need_full ack),
//  * declares the initial topology stable after T_GSC of report silence —
//    the quantity Figure 5 measures,
//  * correlates adapter failures into node and switch failures using the
//    configuration database's wiring records (§3),
//  * infers domain moves: a failure in one AMG followed by a join in
//    another within the move window is a move, not a death (§3.1); moves
//    Central itself initiated are expected and fully suppressed,
//  * verifies the discovered topology against the configuration database
//    (§2.2) and flags typed inconsistencies,
//  * drives reconfiguration through the switch console (§3.1).
//
// Failover: Central is deliberately centralized (§4.2); when the admin AMG
// elects a new leader, a fresh instance activates empty and rebuilds its
// view from the full reports every AMG leader re-sends.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "config/configdb.h"
#include "config/verifier.h"
#include "gs/events.h"
#include "gs/messages.h"
#include "gs/params.h"
#include "net/console.h"
#include "sim/time_source.h"

namespace gs::proto {

class Central {
 public:
  // `db` and `console` may be null: a Central on a node without database /
  // switch-console access can still aggregate failure reports for its
  // partition, but cannot verify, correlate switches, or reconfigure (§2.2).
  Central(sim::TimeSource& clock, const Params& params, config::ConfigDb* db,
          net::SwitchConsole* console);

  Central(const Central&) = delete;
  Central& operator=(const Central&) = delete;

  // Cancels stability/lease/held-failure/move timers without emitting
  // events or traces; safe with callbacks still queued on a live clock.
  ~Central();

  // Dissemination bus (§2.2): subscribe for farm events; any number of
  // subscribers, each holding an RAII obs::Subscription.
  [[nodiscard]] EventBus& event_bus() { return event_bus_; }

  // Observer of adapter-table mutations. The two-level hierarchy's domain
  // uplink (central_hier.h) registers one to learn which adapters changed
  // since its last batched flush to the root. Notifications may overcount
  // (a touched-but-identical row is fine — the uplink dedups via a dirty
  // set); they never undercount.
  class TableObserver {
   public:
    virtual ~TableObserver() = default;
    virtual void central_activated() {}
    virtual void central_deactivated() {}
    virtual void adapter_changed(util::IpAddress ip) { (void)ip; }
  };
  void set_table_observer(TableObserver* observer) { observer_ = observer; }

  void activate(util::IpAddress self_admin_ip);
  void deactivate();
  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] util::IpAddress self_ip() const { return self_ip_; }
  [[nodiscard]] bool has_db_access() const { return db_ != nullptr; }

  // --- Report ingestion -----------------------------------------------------

  void handle_report(util::IpAddress from, const MembershipReport& report,
                     const std::function<void(const ReportAck&)>& reply);

  [[nodiscard]] std::uint64_t reports_received() const {
    return reports_received_;
  }

  // --- Farm view --------------------------------------------------------------

  struct GroupInfo {
    MemberInfo leader;
    std::uint64_t view = 0;
    std::vector<util::IpAddress> members;
  };
  [[nodiscard]] std::vector<GroupInfo> groups() const;

  struct AdapterStatus {
    MemberInfo info;
    bool alive = false;
    util::IpAddress group_leader;  // unspecified when unassigned
    std::uint64_t view = 0;        // the owning group's view (0 unassigned)
    sim::SimTime last_change = 0;
  };
  [[nodiscard]] std::optional<AdapterStatus> adapter_status(
      util::IpAddress ip) const;
  // Every known adapter's status — the hierarchy uplink's full-digest
  // source (central_hier.h).
  [[nodiscard]] std::vector<AdapterStatus> adapter_table() const;
  [[nodiscard]] std::size_t known_adapter_count() const {
    return adapters_.size();
  }
  [[nodiscard]] std::size_t alive_adapter_count() const;

  [[nodiscard]] bool initial_topology_stable() const { return stable_; }
  // Simulated time at which stability was declared; -1 if not yet.
  [[nodiscard]] sim::SimTime stable_time() const { return stable_time_; }

  [[nodiscard]] bool node_down(util::NodeId node) const {
    return nodes_down_.count(node) > 0;
  }
  [[nodiscard]] std::size_t nodes_down_count() const {
    return nodes_down_.size();
  }
  [[nodiscard]] bool switch_down(util::SwitchId sw) const {
    return switches_down_.count(sw) > 0;
  }

  // --- Verification (§2.2) ------------------------------------------------------

  // Diffs the discovered topology against the configuration database.
  // Emits kInconsistencyFound per finding and returns them. Empty without
  // database access.
  std::vector<config::Inconsistency> verify_now();

  // --- SNMP wiring discovery (§3's stated future work) -----------------------
  // "In the future, GulfStream will independently identify these connections
  // by querying the routers and switches directly using SNMP."
  //
  // Walks each switch's port table through the console and resolves the
  // station MACs against the adapters the AMG leaders have reported.
  // Returns how many adapters' wiring was resolved. Discovered wiring backs
  // switch-failure correlation when the database has no record (or there is
  // no database at all), and enables audit_wiring() / quarantine of unknown
  // adapters.
  std::size_t discover_wiring(const std::vector<util::SwitchId>& switches);

  struct WiringRecord {
    util::SwitchId wired_switch;
    util::PortId wired_port;
    util::VlanId vlan;
  };
  [[nodiscard]] std::optional<WiringRecord> discovered_wiring(
      util::IpAddress ip) const;

  // Audits the database's wiring records against the switches' own bridge
  // tables — §2 warns "it is possible that the configuration database
  // itself is incorrect". Requires database access and a prior
  // discover_wiring(). Each mismatch is also emitted as an inconsistency.
  struct WiringMismatch {
    util::IpAddress ip;
    util::SwitchId db_switch;
    util::PortId db_port;
    util::SwitchId actual_switch;
    util::PortId actual_port;
  };
  std::vector<WiringMismatch> audit_wiring();

  // --- Quarantine (§2.2) -------------------------------------------------------
  // "Inconsistencies can be flagged and the affected adapters disabled, for
  // security reasons, until conflicts are resolved." When a quarantine VLAN
  // is set, verify_now() moves wrong-VLAN adapters (and unknown adapters
  // whose wiring SNMP discovery resolved) onto it.
  void set_quarantine_vlan(util::VlanId vlan) { quarantine_vlan_ = vlan; }
  [[nodiscard]] bool quarantined(util::IpAddress ip) const {
    return quarantined_.count(ip) > 0;
  }
  // Lifts the quarantine: rewires the port back to the database's expected
  // VLAN. Returns false if the adapter was not quarantined or has no record.
  bool release_quarantine(util::IpAddress ip);

  // --- Reconfiguration (§3.1) -----------------------------------------------------

  // Moves one adapter to a VLAN: records the expected move (suppressing the
  // resulting failure notifications), updates the database's expectation,
  // and rewrites the switch port through the console.
  bool move_adapter(util::AdapterId adapter, util::VlanId target);

  // Moves a node between domains: every (adapter, target-VLAN) pair given.
  bool move_node(util::NodeId node,
                 const std::vector<std::pair<util::AdapterId, util::VlanId>>&
                     adapter_vlans);

 private:
  struct Group {
    MemberInfo leader;
    std::uint64_t view = 0;
    std::uint64_t last_seq = 0;
    sim::SimTime last_report = 0;  // lease: when the leader last reported
    std::set<util::IpAddress> members;
  };

  struct AdapterRec {
    MemberInfo info;
    bool alive = false;
    util::IpAddress group_leader;
    sim::SimTime last_change = 0;
  };

  struct MoveState {
    util::VlanId target;
    bool seen_fail = false;
    bool seen_join = false;
    sim::Timer deadline;
  };

  void emit(FarmEvent event);
  void trace(obs::TraceKind kind, util::IpAddress ip = {},
             std::uint64_t a = 0);
  void notify_changed(util::IpAddress ip) {
    if (observer_ != nullptr) observer_->adapter_changed(ip);
  }
  void arm_stability_timer();
  void arm_lease_sweep();
  void lease_sweep();
  void attest_leader(const MemberInfo& leader);
  bool claim_member(const MemberInfo& m, util::IpAddress leader,
                    std::uint64_t view);
  void unassign(util::IpAddress ip);
  void mark_alive(const MemberInfo& m, util::IpAddress leader);
  void mark_failed(util::IpAddress ip);
  void retire_group(util::IpAddress leader_ip);
  void commit_failure(util::IpAddress ip);  // after the move window
  void correlate_failure(util::IpAddress ip);
  void correlate_recovery(util::IpAddress ip);
  void maybe_complete_move(util::IpAddress ip);
  void clear_all_state();
  void cancel_all_timers();

  sim::TimeSource& sim_;
  const Params& params_;
  config::ConfigDb* db_;
  net::SwitchConsole* console_;
  EventBus event_bus_;
  TableObserver* observer_ = nullptr;

  bool active_ = false;
  util::IpAddress self_ip_;
  std::uint64_t reports_received_ = 0;

  std::map<util::IpAddress, Group> groups_;  // keyed by leader adapter IP
  std::map<util::IpAddress, AdapterRec> adapters_;
  std::map<util::IpAddress, MoveState> expected_moves_;
  std::map<util::IpAddress, sim::Timer> held_failures_;

  void quarantine(util::IpAddress ip, util::SwitchId sw, util::PortId port,
                  util::VlanId discovered_on);
  [[nodiscard]] std::optional<util::SwitchId> wired_switch_of(
      util::IpAddress ip) const;
  [[nodiscard]] std::vector<util::IpAddress> ips_wired_to(
      util::SwitchId sw) const;

  sim::Timer stability_timer_;
  sim::Timer lease_timer_;
  bool stable_ = false;
  sim::SimTime stable_time_ = -1;

  std::map<util::IpAddress, WiringRecord> snmp_wiring_;
  util::VlanId quarantine_vlan_;
  std::set<util::IpAddress> quarantined_;

  std::set<util::NodeId> nodes_down_;
  std::set<util::SwitchId> switches_down_;
};

}  // namespace gs::proto
