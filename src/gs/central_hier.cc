#include "gs/central_hier.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"

namespace gs::proto {

// --- DomainUplink -----------------------------------------------------------

DomainUplink::DomainUplink(sim::TimeSource& clock, const Params& params,
                           Central& central, std::uint32_t domain,
                           util::IpAddress self_ip, Iface iface)
    : sim_(clock),
      params_(params),
      central_(central),
      domain_(domain),
      self_ip_(self_ip),
      iface_(std::move(iface)) {
  GS_CHECK_MSG(iface_.send != nullptr && iface_.root_ip != nullptr,
               "DomainUplink::Iface requires send and root_ip");
  central_.set_table_observer(this);
}

DomainUplink::~DomainUplink() {
  central_.set_table_observer(nullptr);
  batch_timer_.cancel();
  retry_timer_.cancel();
  refresh_timer_.cancel();
}

void DomainUplink::central_activated() {
  if (halted_) return;
  // A fresh incarnation of the domain Central: new epoch, sequence space
  // from scratch, and a full digest once its tables have content. The root
  // recognizes the epoch change and replaces the domain's slice.
  ++epoch_;
  seq_ = 0;
  need_full_ = true;
  dirty_.clear();
  outstanding_.reset();
  arm_refresh();
  arm_batch();
}

void DomainUplink::central_deactivated() {
  batch_timer_.cancel();
  retry_timer_.cancel();
  refresh_timer_.cancel();
  drop_outstanding();
  dirty_.clear();
  need_full_ = true;
}

void DomainUplink::adapter_changed(util::IpAddress ip) {
  if (halted_ || !central_.active()) return;
  dirty_.insert(ip);
  arm_batch();
}

void DomainUplink::on_root_changed() {
  if (halted_ || !central_.active()) return;
  // A new root starts empty; whatever was in flight toward the old one is
  // moot. Re-establish the whole domain.
  need_full_ = true;
  outstanding_.reset();
  retry_timer_.cancel();
  flush();
}

void DomainUplink::handle_ack(const DomainReportAck& ack) {
  if (halted_) return;
  if (!outstanding_ || ack.seq != outstanding_->seq || ack.domain != domain_)
    return;
  outstanding_.reset();
  obs::emit_trace(params_.trace,
                  ack.need_full ? obs::TraceKind::kDomainReportNeedFull
                                : obs::TraceKind::kDomainReportAcked,
                  sim_.now(), self_ip_, {}, ack.seq, domain_);
  if (ack.need_full) {
    need_full_ = true;
    flush();
  } else if (need_full_ || !dirty_.empty()) {
    // Changes accumulated while the acked report was in flight.
    arm_batch();
  }
}

void DomainUplink::halt() {
  halted_ = true;
  batch_timer_.cancel();
  retry_timer_.cancel();
  refresh_timer_.cancel();
  drop_outstanding();
  dirty_.clear();
  need_full_ = true;
}

void DomainUplink::drop_outstanding() {
  if (!outstanding_) return;
  // The in-flight digest dies with this Central incarnation: the retry
  // timer is cancelled and a demoted standby never sends again, so without
  // this edge the digest's span could never close or be superseded.
  obs::emit_trace(params_.trace, obs::TraceKind::kDomainReportDropped,
                  sim_.now(), self_ip_, {}, outstanding_->seq, domain_);
  outstanding_.reset();
}

void DomainUplink::resume() {
  halted_ = false;
  // Nothing to send until the domain Central reactivates (which bumps the
  // epoch and queues the full digest).
}

void DomainUplink::arm_batch() {
  // One report outstanding at a time: while in flight, new dirt waits for
  // the ack. The batch window is what turns a burst of table changes into
  // ONE frame with many per-adapter entries.
  if (outstanding_ || batch_timer_.armed()) return;
  const sim::SimDuration wait = std::max<sim::SimDuration>(params_.domain_batch, 0);
  batch_timer_ = sim_.after(wait, [this] { flush(); });
}

void DomainUplink::flush() {
  batch_timer_.cancel();
  if (halted_ || !central_.active()) return;
  if (outstanding_) return;                   // ack path re-arms
  if (!need_full_ && dirty_.empty()) return;  // nothing to say
  if (iface_.root_ip().is_unspecified()) {
    // Uplink AMG not formed yet; try again on the retry cadence (and
    // immediately when on_root_changed fires).
    arm_retry();
    return;
  }
  outstanding_ = build_report();
  send_current();
  arm_retry();
}

DomainReport DomainUplink::build_report() {
  DomainReport rep;
  rep.seq = ++seq_;
  rep.epoch = epoch_;
  rep.domain = domain_;
  rep.sender = self_ip_;
  rep.full = need_full_;
  need_full_ = false;

  // The adapter table knows each row's group leader but not the group's
  // view; one pass over the (small) group list covers every entry.
  std::map<util::IpAddress, std::uint64_t> views;
  for (const Central::GroupInfo& g : central_.groups())
    views[g.leader.ip] = g.view;
  auto to_entry = [&views](const Central::AdapterStatus& status) {
    DomainAdapterEntry e;
    e.info = status.info;
    e.alive = status.alive;
    e.group_leader = status.group_leader;
    auto it = views.find(status.group_leader);
    e.view = it != views.end() ? it->second : status.view;
    return e;
  };

  if (rep.full) {
    for (const Central::AdapterStatus& status : central_.adapter_table())
      rep.entries.push_back(to_entry(status));
  } else {
    for (util::IpAddress ip : dirty_) {
      const auto status = central_.adapter_status(ip);
      if (!status) {
        rep.removed.push_back(ip);
        continue;
      }
      rep.entries.push_back(to_entry(*status));
    }
  }
  dirty_.clear();
  return rep;
}

void DomainUplink::send_current() {
  GS_CHECK(outstanding_.has_value());
  ++reports_sent_;
  obs::emit_trace(params_.trace, obs::TraceKind::kDomainReportSent, sim_.now(),
                  self_ip_, iface_.root_ip(), outstanding_->seq,
                  outstanding_->full ? 1 : 0);
  iface_.send(*outstanding_);
}

void DomainUplink::arm_retry() {
  if (retry_timer_.armed()) return;
  retry_timer_ = sim_.after(params_.report_retry, [this] { retry_tick(); });
}

void DomainUplink::retry_tick() {
  retry_timer_ = sim::Timer();
  if (halted_ || !central_.active()) return;
  if (outstanding_) {
    if (iface_.root_ip().is_unspecified()) {
      arm_retry();  // root vanished mid-flight; keep the report queued
      return;
    }
    obs::emit_trace(params_.trace, obs::TraceKind::kDomainReportRetry,
                    sim_.now(), self_ip_, iface_.root_ip(), outstanding_->seq,
                    domain_);
    iface_.send(*outstanding_);
    arm_retry();
    return;
  }
  // No report in flight: we were parked waiting for a root to appear.
  if (need_full_ || !dirty_.empty()) flush();
}

void DomainUplink::arm_refresh() {
  if (params_.domain_refresh <= 0) return;
  refresh_timer_ =
      sim_.after(params_.domain_refresh, [this] { refresh_tick(); });
}

void DomainUplink::refresh_tick() {
  refresh_timer_ = sim::Timer();
  if (halted_ || !central_.active()) return;
  // Re-assert the whole domain even when nothing changed: the root retires
  // a silent domain after domain_lease, so renewal is the liveness signal.
  need_full_ = true;
  arm_batch();
  arm_refresh();
}

// --- RootCentral ------------------------------------------------------------

RootCentral::RootCentral(sim::TimeSource& clock, const Params& params)
    : sim_(clock), params_(params) {}

RootCentral::~RootCentral() { lease_timer_.cancel(); }

void RootCentral::trace(obs::TraceKind kind, util::IpAddress peer,
                        std::uint64_t a, std::uint64_t b) {
  obs::emit_trace(params_.trace, kind, sim_.now(), self_ip_, peer, a, b);
}

void RootCentral::clear_all_state() {
  rows_.clear();
  domains_.clear();
  lease_timer_.cancel();
  reports_received_ = 0;
  need_fulls_sent_ = 0;
}

void RootCentral::activate(util::IpAddress self_ip) {
  if (active_ && self_ip_ == self_ip) return;
  clear_all_state();
  active_ = true;
  self_ip_ = self_ip;
  arm_lease_sweep();
  trace(obs::TraceKind::kRootActivated);
}

void RootCentral::deactivate() {
  if (!active_) return;
  active_ = false;
  clear_all_state();
  trace(obs::TraceKind::kRootDeactivated);
  self_ip_ = util::IpAddress();
}

void RootCentral::handle_domain_report(
    util::IpAddress from, const DomainReport& report,
    const std::function<void(const DomainReportAck&)>& reply) {
  (void)from;
  if (!active_) return;
  ++reports_received_;

  DomainReportAck ack{};
  ack.seq = report.seq;
  ack.domain = report.domain;

  auto it = domains_.find(report.domain);
  const bool same_incarnation = it != domains_.end() &&
                                it->second.sender == report.sender &&
                                it->second.epoch == report.epoch;
  if (same_incarnation && report.seq <= it->second.last_seq) {
    // Duplicate of something already applied — idempotent ack that still
    // renews the domain lease (first-hand evidence the uplink is alive).
    it->second.last_report = sim_.now();
    trace(obs::TraceKind::kRootReportDup, report.sender, report.seq,
          report.domain);
    reply(ack);
    return;
  }
  if (!report.full &&
      (!same_incarnation || report.seq != it->second.last_seq + 1)) {
    // Unknown incarnation (fresh root, restarted domain Central, or a new
    // uplink sender) or a dropped delta mid-batch: ask for the full digest.
    // Same lease rule as the flat Central's need_full path: a rejected
    // delta from a KNOWN domain still renews the lease — the uplink is
    // alive and mid-recovery — but never touches the row table.
    if (it != domains_.end()) it->second.last_report = sim_.now();
    ack.need_full = true;
    ++need_fulls_sent_;
    reply(ack);
    return;
  }

  DomainState& st = domains_[report.domain];
  st.sender = report.sender;
  st.epoch = report.epoch;
  st.last_seq = report.seq;
  st.last_report = sim_.now();

  if (report.full) {
    // Replace the domain's slice: apply every entry, then drop owned rows
    // the digest no longer mentions (the domain Central restarted and lost
    // them; they re-enter the table when re-reported).
    std::set<util::IpAddress> seen;
    for (const DomainAdapterEntry& entry : report.entries) {
      if (apply_entry(report.domain, entry)) seen.insert(entry.info.ip);
    }
    for (util::IpAddress ip : st.owned) {
      if (seen.count(ip)) continue;
      auto row = rows_.find(ip);
      if (row != rows_.end() && row->second.domain == report.domain)
        rows_.erase(row);
    }
    st.owned = std::move(seen);
  } else {
    for (const DomainAdapterEntry& entry : report.entries) {
      if (apply_entry(report.domain, entry)) st.owned.insert(entry.info.ip);
    }
    for (util::IpAddress ip : report.removed) {
      auto row = rows_.find(ip);
      if (row == rows_.end() || row->second.domain != report.domain) continue;
      rows_.erase(row);
      st.owned.erase(ip);
    }
  }
  trace(obs::TraceKind::kRootReportApplied, report.sender, report.seq,
        report.domain);
  reply(ack);
}

bool RootCentral::apply_entry(std::uint32_t domain,
                              const DomainAdapterEntry& entry) {
  auto it = rows_.find(entry.info.ip);
  if (it != rows_.end() && it->second.domain != domain) {
    // Cross-domain race (a node moved between domains): an ALIVE claim is
    // the adapter re-appearing under the reporting domain and transfers
    // ownership; a dead/unassigned verdict from a non-owner is the old
    // domain's stale view and must not kill the row the new owner renews.
    if (!entry.alive) return false;
    auto old_domain = domains_.find(it->second.domain);
    if (old_domain != domains_.end())
      old_domain->second.owned.erase(entry.info.ip);
  }
  Row& row = rows_[entry.info.ip];
  const bool changed = row.alive != entry.alive ||
                       row.group_leader != entry.group_leader ||
                       row.last_change == 0;
  row.info = entry.info;
  row.alive = entry.alive;
  row.group_leader = entry.group_leader;
  row.view = entry.view;
  row.domain = domain;
  if (changed) row.last_change = sim_.now();
  return true;
}

void RootCentral::arm_lease_sweep() {
  // Mirrors the flat Central's gating: expiry without renewal would retire
  // every healthy-but-quiet domain on schedule.
  if (params_.domain_lease <= 0 || params_.domain_refresh <= 0) return;
  const sim::SimDuration period =
      std::max<sim::SimDuration>(params_.domain_lease / 4, sim::kSecond);
  lease_timer_ = sim_.after(period, [this] { lease_sweep(); });
}

void RootCentral::lease_sweep() {
  lease_timer_ = sim::Timer();
  if (!active_) return;
  std::vector<std::uint32_t> expired;
  for (const auto& [domain, st] : domains_)
    if (sim_.now() - st.last_report > params_.domain_lease)
      expired.push_back(domain);
  for (std::uint32_t domain : expired) {
    auto it = domains_.find(domain);
    if (it == domains_.end()) continue;
    GS_LOG(kDebug, "root-gsc") << "domain " << domain
                               << " lease expired; marking its slice dead";
    // The whole domain went silent: its Central (and uplink) died with no
    // successor. Mark every adapter it owned dead — there is nobody left
    // to send the deaths — and forget the incarnation so the next contact
    // must re-establish with a full.
    for (util::IpAddress ip : it->second.owned) {
      auto row = rows_.find(ip);
      if (row == rows_.end() || row->second.domain != domain) continue;
      if (row->second.alive) {
        row->second.alive = false;
        row->second.last_change = sim_.now();
      }
      row->second.group_leader = util::IpAddress();
    }
    trace(obs::TraceKind::kRootDomainExpired, {}, domain);
    domains_.erase(it);
  }
  arm_lease_sweep();
}

std::optional<RootCentral::AdapterStatus> RootCentral::adapter_status(
    util::IpAddress ip) const {
  auto it = rows_.find(ip);
  if (it == rows_.end()) return std::nullopt;
  AdapterStatus status;
  status.info = it->second.info;
  status.alive = it->second.alive;
  status.group_leader = it->second.group_leader;
  status.view = it->second.view;
  status.domain = it->second.domain;
  status.last_change = it->second.last_change;
  return status;
}

std::size_t RootCentral::alive_adapter_count() const {
  std::size_t n = 0;
  for (const auto& [ip, row] : rows_)
    if (row.alive) ++n;
  return n;
}

std::vector<RootCentral::GroupInfo> RootCentral::groups() const {
  std::map<util::IpAddress, GroupInfo> by_leader;
  for (const auto& [ip, row] : rows_) {
    if (!row.alive || row.group_leader.is_unspecified()) continue;
    GroupInfo& g = by_leader[row.group_leader];
    g.leader = row.group_leader;
    g.view = std::max(g.view, row.view);
    g.members.push_back(ip);
  }
  std::vector<GroupInfo> out;
  out.reserve(by_leader.size());
  for (auto& [leader, g] : by_leader) out.push_back(std::move(g));
  return out;
}

bool RootCentral::node_down(util::NodeId node) const {
  bool any = false;
  for (const auto& [ip, row] : rows_) {
    if (row.info.node != node) continue;
    if (row.alive) return false;
    any = true;
  }
  return any;
}

}  // namespace gs::proto
