// Pluggable failure detectors.
//
// A FailureDetector runs inside a committed AMG on behalf of one adapter.
// Its only output is ctx.suspect(ip) — a *local suspicion*; reporting to
// the leader, verification probes, and the membership recommit are the
// AdapterProtocol's business, identical across detectors. This split is
// what makes the §4.2 strategy comparison (bench E5) an apples-to-apples
// measurement: strategies differ only in monitoring traffic and suspicion
// quality.
//
// Implemented strategies (see params.h FdKind):
//  * uni-ring   — heartbeat right, monitor left (Totem-style, §3).
//  * bi-ring    — heartbeat and monitor both neighbors (GulfStream,
//                 Figure 4); pairs with the leader's two-reporter consensus.
//  * all-to-all — everyone heartbeats everyone (HACMP-style, §5:
//                 "scales poorly").
//  * subgroup   — the ring is split into small subgroups that heartbeat
//                 internally; the leader polls each subgroup at low
//                 frequency to catch whole-subgroup loss (§4.2).
//  * rand-ping  — randomized pinging with indirect probes through proxies
//                 (§4.2, ref [9]).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "gs/amg.h"
#include "gs/messages.h"
#include "gs/params.h"
#include "sim/time_source.h"
#include "util/ip.h"
#include "util/rng.h"

namespace gs::proto {

struct FdContext {
  sim::TimeSource* sim = nullptr;
  const Params* params = nullptr;
  util::IpAddress self;
  // Unicast a complete frame to a member of the group.
  std::function<void(util::IpAddress, net::Payload)> send;
  // Raise a local suspicion (already deduplicated downstream).
  std::function<void(util::IpAddress)> suspect;
  // The adapter's loopback self-test; used before blaming a silent
  // neighbor (§3). Returns true when the local adapter is healthy.
  std::function<bool()> loopback_ok;
  util::Rng rng;
  // Shared encode scratch (the owning AdapterProtocol's); optional — tests
  // that drive a detector standalone may leave it null.
  wire::Writer* encode_scratch = nullptr;

  // Frames a message for send(), allocation-free when scratch is wired.
  template <typename T>
  [[nodiscard]] net::Payload framed(const T& msg) {
    if (encode_scratch != nullptr)
      return net::Payload::copy_of(build_frame(*encode_scratch, msg));
    wire::Writer w;
    return net::Payload::copy_of(build_frame(w, msg));
  }
};

class FailureDetector {
 public:
  virtual ~FailureDetector() = default;

  // Begins monitoring under `view`. Called after every commit; the detector
  // must fully re-arm (ring order may have changed).
  virtual void start(const MembershipView& view) = 0;
  virtual void stop() = 0;

  virtual void on_heartbeat(util::IpAddress from, const Heartbeat& hb) = 0;
  virtual void on_ping_ack(util::IpAddress from, const PingAck& ack) {
    (void)from;
    (void)ack;
  }
  virtual void on_ping_req(util::IpAddress from, const PingReq& req) {
    (void)from;
    (void)req;
  }
  virtual void on_subgroup_poll_ack(util::IpAddress from,
                                    const SubgroupPollAck& ack) {
    (void)from;
    (void)ack;
  }

  [[nodiscard]] virtual FdKind kind() const = 0;

  // How many independent reporters the leader should require before
  // declaring a death without verification (§3's consensus rule).
  [[nodiscard]] virtual int consensus_reporters() const { return 1; }
};

[[nodiscard]] std::unique_ptr<FailureDetector> make_failure_detector(
    FdKind kind, FdContext ctx);

}  // namespace gs::proto
