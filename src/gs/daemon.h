// The GulfStream daemon — one per node, hosting one AdapterProtocol per
// local network adapter (§2.1: "GulfStream runs on all nodes within the
// server farm as a user level daemon").
//
// Besides hosting the protocols, the daemon implements the node-level glue:
//  * the start-up skew and per-message processing-delay model (the δ of
//    Equation 1),
//  * frame reception: CRC/envelope validation, then routing — membership
//    reports to the locally hosted Central, report acks to the hosted
//    leader they belong to, everything else to the adapter's protocol,
//  * the administrative-adapter convention (§2.2): adapter 0 is the admin
//    adapter; the leader of its AMG is GulfStream Central, so this daemon
//    activates/deactivates its Central instance as that leadership changes,
//  * reliable report delivery: leaders' MembershipReports are sent via the
//    admin adapter to the current GSC, retried until acked, rebuilt as
//    full snapshots when GSC changes or asks (need_full).
//
// The daemon sees the outside world only through two seams: a TimeSource
// (virtual simulator time or a wall clock) and a Transport (the simulated
// fabric or real UDP sockets). It does not know which backend it runs on.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "gs/adapter_protocol.h"
#include "gs/central.h"
#include "gs/central_hier.h"
#include "gs/params.h"
#include "net/transport.h"
#include "sim/time_source.h"
#include "util/ids.h"
#include "util/rng.h"
#include "wire/buffer.h"

namespace gs::proto {

// Per-daemon codec accounting: frames decoded per message type and frames
// dropped per reason. Counted per receiver — a multicast decoded from the
// shared cache still counts once per daemon that consumed it — so the
// observatory sees delivery volume, not cache hit rate.
struct WireStats {
  // Indexed by MsgType value (1..20); slot 0 unused.
  static constexpr std::size_t kTypeSlots = 21;

  enum class Drop : std::uint8_t {
    // Envelope rejections, mirroring wire::FrameError's nonzero values.
    kTooShort = 0,
    kBadMagic,
    kBadVersion,
    kLengthMismatch,
    kBadChecksum,
    // The envelope verified but the typed payload decoder rejected it.
    kDecode,
    // The envelope verified but the type is not a known MsgType.
    kUnknownType,
    kCount_,
  };
  static constexpr std::size_t kDropSlots =
      static_cast<std::size_t>(Drop::kCount_);

  std::array<std::uint64_t, kTypeSlots> decoded{};
  std::array<std::uint64_t, kDropSlots> dropped{};

  [[nodiscard]] std::uint64_t total_decoded() const {
    std::uint64_t sum = 0;
    for (const auto v : decoded) sum += v;
    return sum;
  }
  [[nodiscard]] std::uint64_t total_dropped() const {
    std::uint64_t sum = 0;
    for (const auto v : dropped) sum += v;
    return sum;
  }
};

[[nodiscard]] std::string_view to_string(WireStats::Drop reason);

class GsDaemon {
 public:
  struct NodeConfig {
    util::NodeId node;
    std::string name;
    bool central_eligible = false;
    // "In the prototype we have developed, this is done by convention
    // (adapter 0)" (§2.2).
    std::size_t admin_adapter_index = 0;
  };

  // The single wiring struct: everything a daemon touches comes in here.
  // clock/transport/params are borrowed and must outlive the daemon; the
  // daemon hosts one protocol per transport port.
  struct Options {
    sim::TimeSource* clock = nullptr;    // required
    net::Transport* transport = nullptr;  // required
    const Params* params = nullptr;       // required
    NodeConfig node;
    util::Rng rng;
    // Hosted Central instance (optional; only meaningful for
    // central-eligible nodes — it activates when the admin adapter leads).
    Central* central = nullptr;
    // Hosted root Central (two-level hierarchy, central_hier.h). Activates
    // alongside `central` when the admin adapter leads: root-tier nodes'
    // admin adapter is on the root VLAN, so winning that AMG makes this
    // node both its tier's GSC and the root GSC.
    RootCentral* root_central = nullptr;
    // Which adapter (if any) faces the root VLAN. Domain-tier GSC nodes set
    // this to their second adapter: the DomainUplink sends its digests and
    // receives acks through it, and that adapter's AMG leader is the root.
    std::optional<std::size_t> uplink_adapter_index;
  };

  explicit GsDaemon(Options opts);

  GsDaemon(const GsDaemon&) = delete;
  GsDaemon& operator=(const GsDaemon&) = delete;

  // Cancels every daemon-held timer and unhooks the transport's receive
  // handlers. In-flight start-skew / processing-delay callbacks hold a weak
  // life token and become no-ops — a daemon destroyed with timers in flight
  // never fires into a dead transport.
  ~GsDaemon();

  // Begins operation after the modelled start-up skew.
  void start();

  // Models the node dying / rebooting: halt() silences every hosted
  // protocol and deactivates a hosted Central; resume() re-enters discovery
  // ("the GulfStream daemon is started on each machine when it boots").
  void halt();
  void resume();
  [[nodiscard]] bool halted() const { return halted_; }

  [[nodiscard]] const NodeConfig& config() const { return config_; }
  [[nodiscard]] std::size_t adapter_count() const { return protocols_.size(); }
  [[nodiscard]] AdapterProtocol& protocol(std::size_t index);
  [[nodiscard]] const AdapterProtocol& protocol(std::size_t index) const;
  [[nodiscard]] AdapterProtocol& admin_protocol() {
    return protocol(config_.admin_adapter_index);
  }

  // The admin-AMG leader's IP = where reports go (invalid if uncommitted).
  [[nodiscard]] util::IpAddress gsc_ip() const;
  [[nodiscard]] Central* central() { return central_; }
  [[nodiscard]] RootCentral* root_central() { return root_central_; }
  [[nodiscard]] net::Transport& transport() { return transport_; }

  // --- Hierarchy wiring (farm assembly) ------------------------------------
  // The DomainUplink is created after the daemon (it needs the hosted
  // Central plus send/root-ip closures that call back into the daemon), so
  // it is attached here rather than via Options.
  void set_uplink(DomainUplink* uplink) { uplink_ = uplink; }
  // DomainUplink::Iface::send — ships a digest to the root GSC via the
  // uplink adapter (delivered locally when this node *is* the root).
  void send_domain_report(const DomainReport& rep);
  // DomainUplink::Iface::root_ip — the uplink adapter's AMG leader, i.e.
  // the root GSC (unspecified while uncommitted or without an uplink).
  [[nodiscard]] util::IpAddress uplink_root_ip() const;

  [[nodiscard]] std::uint64_t frames_dropped() const {
    return frames_dropped_;
  }
  [[nodiscard]] std::uint64_t reports_sent() const { return reports_sent_; }
  [[nodiscard]] const WireStats& wire_stats() const { return wire_stats_; }

 private:
  struct OutstandingReport {
    std::uint64_t seq = 0;
    MembershipReport report;
    net::Payload frame;  // encoded once; retries share the same bytes
  };

  void on_datagram(std::size_t index, const net::Datagram& dgram);
  void dispatch(std::size_t index, const net::Datagram& dgram);
  void handle_report_frame(util::IpAddress src, const MembershipReport& rep);
  void handle_report_ack(const ReportAck& ack);
  void deliver_ack_locally(const ReportAck& ack);
  void report_pending(std::size_t index);
  void try_send_report(std::size_t index);
  void arm_report_retry();
  void report_retry_tick();
  void arm_report_refresh();
  void report_refresh_tick();
  void on_admin_committed(const MembershipView& view);
  void on_uplink_committed(const MembershipView& view);
  void handle_domain_report_frame(std::size_t index, util::IpAddress src,
                                  const DomainReport& rep);
  [[nodiscard]] util::IpAddress admin_ip() const {
    return transport_.local_ip(config_.admin_adapter_index);
  }

  sim::TimeSource& sim_;
  net::Transport& transport_;
  const Params& params_;
  NodeConfig config_;
  std::vector<std::unique_ptr<AdapterProtocol>> protocols_;
  util::Rng rng_;
  Central* central_ = nullptr;
  RootCentral* root_central_ = nullptr;
  DomainUplink* uplink_ = nullptr;
  std::optional<std::size_t> uplink_index_;

  // Life token for fire-and-forget callbacks (start skew, per-message
  // processing delay): they hold a weak_ptr and no-op once this resets.
  std::shared_ptr<GsDaemon*> alive_;

  util::IpAddress last_gsc_;
  util::IpAddress last_root_;
  std::vector<std::optional<OutstandingReport>> outstanding_;
  sim::Timer report_retry_timer_;
  sim::Timer report_refresh_timer_;
  bool started_ = false;
  bool halted_ = false;

  std::uint64_t frames_dropped_ = 0;
  std::uint64_t reports_sent_ = 0;
  WireStats wire_stats_;
  // Scratch buffer for the daemon's own frames (report acks, reports);
  // reused across messages so steady-state encodes do not allocate.
  wire::Writer scratch_;
};

}  // namespace gs::proto
