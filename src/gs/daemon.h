// The GulfStream daemon — one per node, hosting one AdapterProtocol per
// local network adapter (§2.1: "GulfStream runs on all nodes within the
// server farm as a user level daemon").
//
// Besides hosting the protocols, the daemon implements the node-level glue:
//  * the start-up skew and per-message processing-delay model (the δ of
//    Equation 1),
//  * frame reception: CRC/envelope validation, then routing — membership
//    reports to the locally hosted Central, report acks to the hosted
//    leader they belong to, everything else to the adapter's protocol,
//  * the administrative-adapter convention (§2.2): adapter 0 is the admin
//    adapter; the leader of its AMG is GulfStream Central, so this daemon
//    activates/deactivates its Central instance as that leadership changes,
//  * reliable report delivery: leaders' MembershipReports are sent via the
//    admin adapter to the current GSC, retried until acked, rebuilt as
//    full snapshots when GSC changes or asks (need_full).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gs/adapter_protocol.h"
#include "gs/central.h"
#include "gs/params.h"
#include "net/fabric.h"
#include "sim/simulator.h"
#include "util/ids.h"
#include "util/rng.h"

namespace gs::proto {

class GsDaemon {
 public:
  struct NodeConfig {
    util::NodeId node;
    std::string name;
    bool central_eligible = false;
    // "In the prototype we have developed, this is done by convention
    // (adapter 0)" (§2.2).
    std::size_t admin_adapter_index = 0;
  };

  GsDaemon(sim::Simulator& sim, net::Fabric& fabric, const Params& params,
           NodeConfig config, std::vector<util::AdapterId> adapters,
           util::Rng rng);

  GsDaemon(const GsDaemon&) = delete;
  GsDaemon& operator=(const GsDaemon&) = delete;

  // Wires a Central instance hosted on this node (only meaningful for
  // central-eligible nodes; it activates when the admin adapter leads).
  void set_central(Central* central) { central_ = central; }

  // Begins operation after the modelled start-up skew.
  void start();

  // Models the node dying / rebooting: halt() silences every hosted
  // protocol and deactivates a hosted Central; resume() re-enters discovery
  // ("the GulfStream daemon is started on each machine when it boots").
  void halt();
  void resume();
  [[nodiscard]] bool halted() const { return halted_; }

  [[nodiscard]] const NodeConfig& config() const { return config_; }
  [[nodiscard]] std::size_t adapter_count() const { return protocols_.size(); }
  [[nodiscard]] AdapterProtocol& protocol(std::size_t index);
  [[nodiscard]] const AdapterProtocol& protocol(std::size_t index) const;
  [[nodiscard]] util::AdapterId adapter_id(std::size_t index) const;
  [[nodiscard]] AdapterProtocol& admin_protocol() {
    return protocol(config_.admin_adapter_index);
  }

  // The admin-AMG leader's IP = where reports go (invalid if uncommitted).
  [[nodiscard]] util::IpAddress gsc_ip() const;
  [[nodiscard]] Central* central() { return central_; }

  [[nodiscard]] std::uint64_t frames_dropped() const {
    return frames_dropped_;
  }
  [[nodiscard]] std::uint64_t reports_sent() const { return reports_sent_; }

 private:
  struct OutstandingReport {
    std::uint64_t seq = 0;
    MembershipReport report;
    std::vector<std::uint8_t> frame;
  };

  void on_datagram(std::size_t index, const net::Datagram& dgram);
  void dispatch(std::size_t index, const net::Datagram& dgram);
  void handle_report_frame(util::IpAddress src, const MembershipReport& rep);
  void handle_report_ack(const ReportAck& ack);
  void deliver_ack_locally(const ReportAck& ack);
  void report_pending(std::size_t index);
  void try_send_report(std::size_t index);
  void arm_report_retry();
  void report_retry_tick();
  void arm_report_refresh();
  void report_refresh_tick();
  void on_admin_committed(const MembershipView& view);

  sim::Simulator& sim_;
  net::Fabric& fabric_;
  const Params& params_;
  NodeConfig config_;
  std::vector<util::AdapterId> adapter_ids_;
  std::vector<std::unique_ptr<AdapterProtocol>> protocols_;
  util::Rng rng_;
  Central* central_ = nullptr;

  util::IpAddress last_gsc_;
  std::vector<std::optional<OutstandingReport>> outstanding_;
  sim::Timer report_retry_timer_;
  sim::Timer report_refresh_timer_;
  bool started_ = false;
  bool halted_ = false;

  std::uint64_t frames_dropped_ = 0;
  std::uint64_t reports_sent_ = 0;
};

}  // namespace gs::proto
