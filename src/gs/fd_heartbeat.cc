#include <algorithm>

#include "gs/fd_impl.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"

namespace gs::proto {

HeartbeatFd::HeartbeatFd(FdKind kind, FdContext ctx)
    : kind_(kind), ctx_(std::move(ctx)) {
  GS_CHECK(kind_ != FdKind::kRandomPing);
}

std::vector<std::size_t> HeartbeatFd::subgroup_of(std::size_t rank,
                                                  std::size_t group_size,
                                                  std::size_t subgroup_size) {
  GS_CHECK(subgroup_size > 0 && rank < group_size);
  const std::size_t chunk = rank / subgroup_size;
  const std::size_t begin = chunk * subgroup_size;
  const std::size_t end = std::min(begin + subgroup_size, group_size);
  std::vector<std::size_t> out;
  out.reserve(end - begin);
  for (std::size_t r = begin; r < end; ++r) out.push_back(r);
  return out;
}

void HeartbeatFd::stop_all() {
  running_ = false;
  send_timer_.cancel();
  poll_timer_.cancel();
  for (auto& [peer, timer] : deadlines_) timer.cancel();
  deadlines_.clear();
  targets_.clear();
  monitored_.clear();
  chunks_.clear();
  poll_chunk_by_seq_.clear();
}

void HeartbeatFd::compute_peers() {
  targets_.clear();
  monitored_.clear();
  chunks_.clear();
  const std::size_t n = view_.size();
  if (n < 2) return;
  const auto rank_opt = view_.rank_of(ctx_.self);
  GS_CHECK(rank_opt.has_value());
  const std::size_t rank = *rank_opt;

  auto add_unique = [](std::vector<util::IpAddress>& v, util::IpAddress ip) {
    if (std::find(v.begin(), v.end(), ip) == v.end()) v.push_back(ip);
  };

  switch (kind_) {
    case FdKind::kUnidirectionalRing:
      // Heartbeat the right neighbor, monitor the left (§3's base scheme).
      add_unique(targets_, view_.right_of(ctx_.self));
      add_unique(monitored_, view_.left_of(ctx_.self));
      break;
    case FdKind::kBidirectionalRing:
      add_unique(targets_, view_.right_of(ctx_.self));
      add_unique(targets_, view_.left_of(ctx_.self));
      add_unique(monitored_, view_.left_of(ctx_.self));
      add_unique(monitored_, view_.right_of(ctx_.self));
      break;
    case FdKind::kAllToAll:
      for (const MemberInfo& m : view_.members()) {
        if (m.ip == ctx_.self) continue;
        targets_.push_back(m.ip);
        monitored_.push_back(m.ip);
      }
      break;
    case FdKind::kSubgroupRing: {
      const auto sub = subgroup_of(
          rank, n, static_cast<std::size_t>(ctx_.params->subgroup_size));
      for (std::size_t r : sub) {
        const util::IpAddress ip = view_.member_at(r).ip;
        if (ip == ctx_.self) continue;
        add_unique(targets_, ip);
        add_unique(monitored_, ip);
      }
      // The leader additionally polls every other subgroup at low frequency
      // to catch a catastrophic whole-subgroup failure (§4.2).
      if (rank == 0) {
        const auto s = static_cast<std::size_t>(ctx_.params->subgroup_size);
        for (std::size_t begin = 0; begin < n; begin += s) {
          if (begin == 0) continue;  // own subgroup is covered by heartbeats
          ChunkState chunk;
          for (std::size_t r = begin; r < std::min(begin + s, n); ++r)
            chunk.members.push_back(view_.member_at(r).ip);
          chunks_.push_back(std::move(chunk));
        }
      }
      break;
    }
    case FdKind::kRandomPing:
      GS_CHECK_MSG(false, "RandPingFd handles kRandomPing");
  }
}

void HeartbeatFd::start(const MembershipView& view) {
  stop_all();
  view_ = view;
  running_ = true;
  compute_peers();
  if (targets_.empty() && monitored_.empty() && chunks_.empty()) return;

  // Stagger the first heartbeat so group members do not synchronize.
  const auto period = ctx_.params->hb_period;
  send_timer_ = ctx_.sim->after(
      static_cast<sim::SimDuration>(ctx_.rng.below(
          static_cast<std::uint64_t>(std::max<sim::SimDuration>(1, period)))),
      [this] { send_heartbeats(); });

  for (util::IpAddress peer : monitored_)
    arm_monitor(peer, /*after_suspicion=*/false);

  if (!chunks_.empty()) {
    poll_timer_ = ctx_.sim->after(ctx_.params->subgroup_poll_period,
                                  [this] { send_polls(); });
  }
}

void HeartbeatFd::send_heartbeats() {
  if (!running_) return;
  ++hb_seq_;
  for (util::IpAddress peer : targets_) {
    Heartbeat hb{};
    hb.view = view_.view();
    hb.seq = hb_seq_;
    ctx_.send(peer, ctx_.framed(hb));
  }
  send_timer_ = ctx_.sim->after(ctx_.params->hb_period,
                                [this] { send_heartbeats(); });
}

void HeartbeatFd::arm_monitor(util::IpAddress peer, bool after_suspicion) {
  const auto period = ctx_.params->hb_period;
  const sim::SimDuration deadline =
      after_suspicion
          ? ctx_.params->resuspect_hold
          : period * ctx_.params->hb_sensitivity + period / 2;
  sim::Timer& timer = deadlines_[peer];
  // Fast path for the steady state (every heartbeat arrival lands here):
  // the pending deadline moves in place — the backend keeps the callback,
  // so the cycle is allocation-free. Falls back to a fresh arm on first
  // use and when re-arming from monitor_expired (the timer just fired).
  if (timer.rearm_after(deadline)) return;
  timer = ctx_.sim->after(deadline, [this, peer] { monitor_expired(peer); });
}

void HeartbeatFd::monitor_expired(util::IpAddress peer) {
  if (!running_) return;
  // Before blaming the neighbor, make sure we can still hear at all (§3:
  // "first performing a loopback test on its own adapter").
  if (ctx_.params->fd_loopback_test && ctx_.loopback_ok && !ctx_.loopback_ok()) {
    GS_LOG(kDebug, "fd") << ctx_.self << " loopback failed; not blaming "
                         << peer;
    arm_monitor(peer, /*after_suspicion=*/false);
    return;
  }
  obs::emit_trace(ctx_.params->trace, obs::TraceKind::kHeartbeatMiss,
                  ctx_.sim->now(), ctx_.self, peer);
  ctx_.suspect(peer);
  arm_monitor(peer, /*after_suspicion=*/true);
}

void HeartbeatFd::on_heartbeat(util::IpAddress from, const Heartbeat& hb) {
  if (!running_) return;
  if (hb.view != view_.view()) return;  // stale traffic handled upstream
  if (std::find(monitored_.begin(), monitored_.end(), from) ==
      monitored_.end())
    return;
  arm_monitor(from, /*after_suspicion=*/false);
}

void HeartbeatFd::send_polls() {
  if (!running_) return;
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    ChunkState& chunk = chunks_[i];
    if (chunk.outstanding_seq != 0) {
      poll_chunk_by_seq_.erase(chunk.outstanding_seq);
      chunk.outstanding_seq = 0;
      if (++chunk.consecutive_misses >= ctx_.params->subgroup_poll_misses) {
        // The whole subgroup has gone silent across rotated targets:
        // suspect every member (the leader verifies each individually).
        for (util::IpAddress ip : chunk.members) ctx_.suspect(ip);
        chunk.consecutive_misses = 0;
      }
    }
    const util::IpAddress target =
        chunk.members[chunk.next_target % chunk.members.size()];
    chunk.next_target++;
    SubgroupPoll poll{};
    poll.seq = ++poll_seq_;
    chunk.outstanding_seq = poll.seq;
    poll_chunk_by_seq_[poll.seq] = i;
    ctx_.send(target, ctx_.framed(poll));
  }
  poll_timer_ = ctx_.sim->after(ctx_.params->subgroup_poll_period,
                                [this] { send_polls(); });
}

void HeartbeatFd::on_subgroup_poll_ack(util::IpAddress /*from*/,
                                       const SubgroupPollAck& ack) {
  if (!running_) return;
  auto it = poll_chunk_by_seq_.find(ack.seq);
  if (it == poll_chunk_by_seq_.end()) return;
  ChunkState& chunk = chunks_[it->second];
  poll_chunk_by_seq_.erase(it);
  if (chunk.outstanding_seq == ack.seq) {
    chunk.outstanding_seq = 0;
    chunk.consecutive_misses = 0;
  }
}

}  // namespace gs::proto
