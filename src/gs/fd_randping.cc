#include "gs/fd_impl.h"
#include "util/check.h"

namespace gs::proto {

void RandPingFd::start(const MembershipView& view) {
  stop();
  view_ = view;
  peers_.clear();
  for (const MemberInfo& m : view.members())
    if (m.ip != ctx_.self) peers_.push_back(m.ip);
  if (peers_.empty()) return;
  running_ = true;
  round_acked_ = true;
  const auto period = ctx_.params->ping_period;
  tick_timer_ = ctx_.sim->after(
      static_cast<sim::SimDuration>(ctx_.rng.below(
          static_cast<std::uint64_t>(std::max<sim::SimDuration>(1, period)))),
      [this] { tick(); });
}

void RandPingFd::stop() {
  running_ = false;
  tick_timer_.cancel();
  direct_timer_.cancel();
  round_end_timer_.cancel();
  proxy_pending_.clear();
}

void RandPingFd::tick() {
  if (!running_) return;

  // Retire proxy duties that can no longer be useful.
  const sim::SimTime now = ctx_.sim->now();
  for (auto it = proxy_pending_.begin(); it != proxy_pending_.end();) {
    if (now - it->second.created > ctx_.params->ping_period)
      it = proxy_pending_.erase(it);
    else
      ++it;
  }

  round_target_ = peers_[ctx_.rng.below(peers_.size())];
  do {
    round_nonce_ = ctx_.rng.next();
  } while (round_nonce_ == 0);
  round_acked_ = false;

  Ping ping{};
  ping.nonce = round_nonce_;
  ping.origin = ctx_.self;
  ctx_.send(round_target_, ctx_.framed(ping));

  direct_timer_ =
      ctx_.sim->after(ctx_.params->ping_timeout, [this] { direct_timeout(); });
  // Give indirect probes the rest of the period to come back.
  round_end_timer_ = ctx_.sim->after(ctx_.params->ping_period * 9 / 10,
                                     [this] { period_end(); });
  tick_timer_ = ctx_.sim->after(ctx_.params->ping_period, [this] { tick(); });
}

void RandPingFd::direct_timeout() {
  if (!running_ || round_acked_) return;
  // No direct ack: route indirect pings through up to `ping_proxies`
  // other members (ref [9]'s randomized scheme).
  std::vector<util::IpAddress> candidates;
  for (util::IpAddress ip : peers_)
    if (ip != round_target_) candidates.push_back(ip);
  const auto want = static_cast<std::size_t>(ctx_.params->ping_proxies);
  for (std::size_t i = 0; i < want && !candidates.empty(); ++i) {
    const std::size_t pick = ctx_.rng.below(candidates.size());
    PingReq req{};
    req.nonce = round_nonce_;
    req.origin = ctx_.self;
    req.target = round_target_;
    ctx_.send(candidates[pick], ctx_.framed(req));
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
  }
}

void RandPingFd::period_end() {
  if (!running_ || round_acked_) return;
  ctx_.suspect(round_target_);
}

void RandPingFd::on_ping_ack(util::IpAddress /*from*/, const PingAck& ack) {
  if (!running_) return;
  if (ack.nonce == round_nonce_ && ack.target == round_target_)
    round_acked_ = true;
  // Proxy duty: forward evidence of life back to the original requester.
  auto it = proxy_pending_.find(ack.nonce);
  if (it != proxy_pending_.end()) {
    PingAck forward{};
    forward.nonce = ack.nonce;
    forward.target = ack.target;
    ctx_.send(it->second.origin, ctx_.framed(forward));
    proxy_pending_.erase(it);
  }
}

void RandPingFd::on_ping_req(util::IpAddress /*from*/, const PingReq& req) {
  if (!running_) return;
  proxy_pending_[req.nonce] = ProxyDuty{req.origin, ctx_.sim->now()};
  Ping ping{};
  ping.nonce = req.nonce;
  ping.origin = ctx_.self;  // the target acks to us; we forward
  ctx_.send(req.target, ctx_.framed(ping));
}

}  // namespace gs::proto
