// Umbrella header: the GulfStream public API.
//
// Typical embedding (see examples/):
//   1. build a net::Fabric (or let farm::Farm do it from a FarmSpec),
//   2. create one GsDaemon per node over its adapters,
//   3. hand Central instances to the central-eligible nodes,
//   4. run the simulator; subscribe to Central's FarmEvents.
#pragma once

#include "gs/adapter_protocol.h"  // IWYU pragma: export
#include "gs/amg.h"               // IWYU pragma: export
#include "gs/central.h"           // IWYU pragma: export
#include "gs/daemon.h"            // IWYU pragma: export
#include "gs/events.h"            // IWYU pragma: export
#include "gs/fd.h"                // IWYU pragma: export
#include "gs/messages.h"          // IWYU pragma: export
#include "gs/params.h"            // IWYU pragma: export
