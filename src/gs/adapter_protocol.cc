#include "gs/adapter_protocol.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"

namespace gs::proto {

namespace {
// A stale ex-member heartbeats at full rate; one StaleNotice per peer per
// window is plenty to get it to rejoin.
constexpr sim::SimDuration kStaleNoticeWindow = sim::seconds(1);
}  // namespace

std::string_view to_string(AdapterState s) {
  switch (s) {
    case AdapterState::kIdle: return "idle";
    case AdapterState::kBeaconing: return "beaconing";
    case AdapterState::kWaitingForLeader: return "waiting-for-leader";
    case AdapterState::kMember: return "member";
    case AdapterState::kLeader: return "leader";
  }
  return "?";
}

AdapterProtocol::AdapterProtocol(sim::TimeSource& clock, const Params& params,
                                 MemberInfo self, NetIface net, Hooks hooks,
                                 util::Rng rng)
    : sim_(clock),
      params_(params),
      self_(self),
      net_(std::move(net)),
      hooks_(std::move(hooks)),
      rng_(rng) {}

void AdapterProtocol::trace(obs::TraceKind kind, util::IpAddress peer,
                            std::uint64_t a, std::uint64_t b) {
  obs::emit_trace(params_.trace, kind, sim_.now(), self_.ip, peer, a, b, {},
                  self_.node);
}

AdapterProtocol::~AdapterProtocol() { cancel_all_timers(); }

void AdapterProtocol::cancel_all_timers() {
  // Destruction-path cleanup only: cancels without tracing or notifying —
  // shutdown()'s kTwoPcAbort emission must not happen during teardown,
  // where sinks may already be gone (and golden traces would change).
  if (fd_) {
    fd_->stop();
    fd_.reset();
  }
  beacon_send_timer_.cancel();
  beacon_end_timer_.cancel();
  defer_timer_.cancel();
  if (pending_prepare_) pending_prepare_->expiry.cancel();
  if (proposal_) proposal_->timer.cancel();
  change_timer_.cancel();
  for (auto& [ip, s] : suspicions_) s.probe_timer.cancel();
  report_timer_.cancel();
  for (auto& [ip, out] : outstanding_suspects_) out.timer.cancel();
  if (takeover_) takeover_->timer.cancel();
}

void AdapterProtocol::start() {
  GS_CHECK(state_ == AdapterState::kIdle);
  begin_beaconing();
}

void AdapterProtocol::shutdown() {
  stop_fd();
  clear_member_duty_state();
  clear_leader_duty_state();
  committed_ = MembershipView();
  committed_at_ = -1;
  if (pending_prepare_) {
    pending_prepare_->expiry.cancel();
    pending_prepare_.reset();
  }
  beacon_send_timer_.cancel();
  beacon_end_timer_.cancel();
  defer_timer_.cancel();
  heard_.clear();
  stale_notice_sent_.clear();
  // The report counter dies with the daemon process: after a restart this
  // adapter numbers its reports from scratch (GSC recognizes the fresh
  // instance by the full snapshot, not by the counter).
  report_seq_ = 0;
  state_ = AdapterState::kIdle;
}

void AdapterProtocol::restart() {
  GS_CHECK(state_ == AdapterState::kIdle);
  begin_beaconing();
}

bool AdapterProtocol::unicast(util::IpAddress to, net::Payload frame) {
  GS_CHECK(net_.unicast != nullptr);
  return net_.unicast(to, std::move(frame));
}

// --- Discovery ----------------------------------------------------------------

void AdapterProtocol::begin_beaconing() {
  state_ = AdapterState::kBeaconing;
  heard_.clear();
  defer_join_attempted_ = false;
  beacon_send_timer_.cancel();
  beacon_end_timer_.cancel();
  defer_timer_.cancel();

  beacon_tick();

  // Model of the paper's observed start-up anomaly (§4.1): the phase-end
  // timer is armed 1-2 s after beaconing actually begins, because the
  // daemon interleaves other initialization with beacon start-up.
  const sim::SimDuration setup_extra =
      params_.beacon_setup_max > params_.beacon_setup_min
          ? rng_.range(params_.beacon_setup_min, params_.beacon_setup_max)
          : params_.beacon_setup_min;
  beacon_end_timer_ = sim_.after(params_.beacon_phase + setup_extra,
                                 [this] { end_beacon_phase(); });
}

void AdapterProtocol::beacon_tick() {
  if (state_ != AdapterState::kBeaconing && state_ != AdapterState::kLeader)
    return;
  Beacon b{};
  b.self = self_;
  b.is_leader = state_ == AdapterState::kLeader;
  b.view = committed_.empty() ? 0 : committed_.view();
  b.group_size = static_cast<std::uint32_t>(committed_.size());
  if (net_.beacon_multicast) net_.beacon_multicast(framed(b));
  ++stats_.beacons_sent;
  trace(obs::TraceKind::kBeaconSent, {}, b.view, b.group_size);
  beacon_send_timer_ =
      sim_.after(params_.beacon_interval, [this] { beacon_tick(); });
}

void AdapterProtocol::end_beacon_phase() {
  if (state_ != AdapterState::kBeaconing) return;

  util::IpAddress best = self_ip();
  for (const auto& [ip, heard] : heard_) best = std::max(best, ip);

  if (best == self_ip()) {
    // We have the highest IP: undertake group formation (§2.1). Fellow
    // beaconers (non-leaders) become our members; committed groups we
    // overheard are led by lower IPs and will merge into us via
    // JoinRequest once their leaders hear our leader beacons.
    trace(obs::TraceKind::kElectionWon, {}, heard_.size());
    for (const auto& [ip, heard] : heard_)
      if (!heard.is_leader) pending_adds_[ip] = heard.info;
    if (pending_adds_.empty()) {
      install_singleton();
    } else {
      state_ = AdapterState::kLeader;  // tentative: formation in flight
      propose();
    }
    return;
  }

  // Defer AMG formation and leadership to the highest IP heard (§2.1).
  trace(obs::TraceKind::kElectionDeferred, best);
  state_ = AdapterState::kWaitingForLeader;
  beacon_send_timer_.cancel();
  defer_timer_ = sim_.after(params_.defer_timeout, [this] { defer_expired(); });
}

void AdapterProtocol::defer_expired() {
  if (state_ != AdapterState::kWaitingForLeader) return;
  // The expected leader never committed us (its beacons or our 2PC traffic
  // were lost, or it died). If a committed higher-IP leader was heard while
  // we waited, ask it directly for membership before falling back: forming
  // a singleton beside a live group only to merge moments later puts every
  // member of the segment through an extra view change. One join attempt,
  // one more defer period; then the singleton fallback repairs the rest.
  if (!defer_join_attempted_) {
    util::IpAddress target;
    for (const auto& [ip, heard] : heard_)
      if (heard.is_leader && ip > self_ip()) target = std::max(target, ip);
    if (!target.is_unspecified()) {
      defer_join_attempted_ = true;
      GS_LOG(kDebug, "amg") << self_ip() << " defer timeout; joining leader "
                            << target;
      // This attempt buys a full extra defer period — it must actually go
      // out. Clear the join rate limiter so maybe_send_join cannot silently
      // swallow it because some earlier join to the same target was recent.
      last_join_sent_ = -1;
      maybe_send_join(target);
      defer_timer_ =
          sim_.after(params_.defer_timeout, [this] { defer_expired(); });
      return;
    }
  }
  GS_LOG(kDebug, "amg") << self_ip() << " defer timeout; forming singleton";
  install_singleton();
}

void AdapterProtocol::install_singleton() {
  install(MembershipView::make(++clock_, {self_}));
}

// --- Participant 2PC -----------------------------------------------------------

void AdapterProtocol::handle_prepare(util::IpAddress src, const Prepare& msg) {
  bump_clock(msg.view);
  auto nack = [&](std::uint64_t holder_view) {
    GS_LOG(kDebug, "2pc") << self_ip() << " nacks prepare v" << msg.view
                          << " from " << src << " (holder v" << holder_view
                          << ")";
    PrepareAck ack{};
    ack.view = msg.view;
    ack.ok = false;
    ack.holder_view = holder_view;
    unicast(src, framed(ack));
  };

  if (!committed_.empty() && msg.view <= committed_.view()) {
    nack(committed_.view());
    return;
  }
  if (pending_prepare_ && msg.view < pending_prepare_->view) {
    nack(pending_prepare_->view);
    return;
  }
  if (pending_prepare_ && msg.view == pending_prepare_->view &&
      pending_prepare_->coordinator != src) {
    nack(pending_prepare_->view);
    return;
  }
  const bool includes_self =
      std::any_of(msg.members.begin(), msg.members.end(),
                  [&](const MemberInfo& m) { return m.ip == self_ip(); });
  if (!includes_self || msg.leader != src) {
    nack(0);
    return;
  }

  PendingPrepare pending;
  pending.view = msg.view;
  pending.coordinator = src;
  pending.membership = MembershipView::make(msg.view, msg.members);
  if (pending_prepare_) pending_prepare_->expiry.cancel();
  pending_prepare_ = std::move(pending);
  // Hold the prepared state past the coordinator's worst case: it may ride
  // out every retry ((retries+1) * timeout) before committing the subset.
  pending_prepare_->expiry = sim_.after(
      2 * (params_.twopc_retries + 1) * params_.twopc_timeout, [this] {
        // Coordinator vanished between phases; forget the prepared view.
        pending_prepare_.reset();
      });

  GS_LOG(kDebug, "2pc") << self_ip() << " acks prepare v" << msg.view
                        << " from " << src;
  PrepareAck ack{};
  ack.view = msg.view;
  ack.ok = true;
  unicast(src, framed(ack));
}

void AdapterProtocol::handle_commit(const Commit& msg) {
  bump_clock(msg.view);
  // The commit carries the authoritative final membership (participants
  // whose acks were lost have been excluded), so it is installable on its
  // own: all we require is that it is newer than what we hold and that it
  // includes us. The prepare/ack phase still gates whom the coordinator
  // may include.
  if (!committed_.empty() && msg.view <= committed_.view()) return;
  MembershipView final = MembershipView::make(msg.view, msg.members);
  if (!final.contains(self_ip())) return;  // excluded; rejoin via discovery
  if (pending_prepare_ && pending_prepare_->view <= msg.view) {
    pending_prepare_->expiry.cancel();
    pending_prepare_.reset();
  }
  install(std::move(final));
}

void AdapterProtocol::maybe_implicit_commit(std::uint64_t msg_view) {
  // Group traffic tagged with the prepared view proves the coordinator
  // committed: members only emit view-v messages after installing v. This
  // recovers members whose Commit datagram was lost.
  if (pending_prepare_ && pending_prepare_->view == msg_view)
    install_pending();
}

void AdapterProtocol::install_pending() {
  GS_CHECK(pending_prepare_.has_value());
  MembershipView view = std::move(pending_prepare_->membership);
  pending_prepare_->expiry.cancel();
  pending_prepare_.reset();
  install(std::move(view));
}

void AdapterProtocol::install(MembershipView view) {
  GS_CHECK(!view.empty());
  bump_clock(view.view());
  committed_ = std::move(view);
  committed_at_ = sim_.now();
  ++stats_.commits;

  beacon_end_timer_.cancel();
  defer_timer_.cancel();
  if (pending_prepare_ && pending_prepare_->view <= committed_.view()) {
    pending_prepare_->expiry.cancel();
    pending_prepare_.reset();
  }

  const bool lead = committed_.leader().ip == self_ip();
  state_ = lead ? AdapterState::kLeader : AdapterState::kMember;
  trace(obs::TraceKind::kViewInstalled, committed_.leader().ip,
        committed_.view(), committed_.size());
  clear_member_duty_state();

  // Prune the StaleNotice rate-limit map: entries for peers in the new view
  // are moot (their heartbeats go to the detector now), and entries past
  // the rate window carry no information. Otherwise the map accumulates one
  // entry per stale peer ever heard, for as long as we stay committed.
  for (auto stale = stale_notice_sent_.begin();
       stale != stale_notice_sent_.end();) {
    if (committed_.contains(stale->first) ||
        sim_.now() - stale->second >= kStaleNoticeWindow)
      stale = stale_notice_sent_.erase(stale);
    else
      ++stale;
  }

  if (lead) {
    // Drop bookkeeping that the new view made moot.
    for (auto it = suspicions_.begin(); it != suspicions_.end();) {
      if (!committed_.contains(it->first)) {
        it->second.probe_timer.cancel();
        it = suspicions_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = pending_adds_.begin(); it != pending_adds_.end();)
      it = committed_.contains(it->first) ? pending_adds_.erase(it) : ++it;
    for (auto it = pending_removes_.begin(); it != pending_removes_.end();)
      it = !committed_.contains(it->first) ? pending_removes_.erase(it) : ++it;

    // Leaders beacon forever so new/merging adapters can find the group.
    beacon_send_timer_.cancel();
    beacon_tick();
    arm_report_debounce();
    if (!pending_adds_.empty() || !pending_removes_.empty())
      schedule_change();
  } else {
    clear_leader_duty_state();
    beacon_send_timer_.cancel();
  }

  start_fd();
  GS_LOG(kDebug, "amg") << self_ip() << " committed view "
                        << committed_.view() << " size " << committed_.size()
                        << (lead ? " (leader)" : "");
  if (hooks_.on_committed) hooks_.on_committed(committed_);
}

// --- Coordinator 2PC -------------------------------------------------------------

void AdapterProtocol::schedule_change() {
  if (proposal_) {
    dirty_ = true;
    return;
  }
  if (change_timer_.armed()) return;
  change_timer_ = sim_.after(params_.change_debounce, [this] {
    change_timer_ = sim::Timer();
    propose();
  });
}

void AdapterProtocol::propose() {
  if (proposal_) {
    dirty_ = true;
    return;
  }
  if (state_ != AdapterState::kLeader) return;

  std::map<util::IpAddress, MemberInfo> members;
  for (const MemberInfo& m : committed_.members()) members[m.ip] = m;
  for (const auto& [ip, reason] : pending_removes_) {
    if (ip == self_ip()) continue;
    members.erase(ip);
  }
  for (const auto& [ip, info] : pending_adds_) members[ip] = info;
  members[self_ip()] = self_;

  std::set<util::IpAddress> new_ips;
  for (const auto& [ip, info] : members) new_ips.insert(ip);
  std::set<util::IpAddress> old_ips;
  for (const MemberInfo& m : committed_.members()) old_ips.insert(m.ip);
  if (!force_recommit_ && !committed_.empty() && new_ips == old_ips) {
    pending_adds_.clear();
    pending_removes_.clear();
    return;
  }
  force_recommit_ = false;
  pending_adds_.clear();
  pending_removes_.clear();

  std::vector<MemberInfo> list;
  list.reserve(members.size());
  for (const auto& [ip, info] : members) list.push_back(info);

  const std::uint64_t view = ++clock_;
  MembershipView proposed = MembershipView::make(view, std::move(list));
  GS_CHECK_MSG(proposed.leader().ip == self_ip(),
               "coordinator must hold the highest IP in its proposal");

  Proposal proposal;
  proposal.view = view;
  proposal.membership = std::move(proposed);
  for (const MemberInfo& m : proposal.membership.members())
    if (m.ip != self_ip()) proposal.awaiting.insert(m.ip);

  if (proposal.awaiting.empty()) {
    install(proposal.membership);
    return;
  }

  Prepare prepare{};
  prepare.view = proposal.view;
  prepare.leader = self_ip();
  prepare.members = proposal.membership.members();
  const net::Payload frame = framed(prepare);
  for (util::IpAddress ip : proposal.awaiting) unicast(ip, frame);
  trace(obs::TraceKind::kTwoPcPrepare, {}, proposal.view,
        proposal.awaiting.size());

  proposal_ = std::move(proposal);
  proposal_->timer =
      sim_.after(params_.twopc_timeout, [this] { twopc_timeout(); });
}

void AdapterProtocol::reinstate_proposal_state(
    const MembershipView& aborted, const std::set<util::IpAddress>& drop,
    RemoveReason drop_reason) {
  // Rebuild pending_adds_/pending_removes_ so the next propose() reproduces
  // `aborted` minus `drop`. Crucially, committed members the aborted
  // proposal already excluded (a dead leader, say) must be re-excluded:
  // propose() captured-and-cleared that state when it ran.
  for (const MemberInfo& m : aborted.members()) {
    if (m.ip == self_ip() || drop.count(m.ip)) continue;
    pending_adds_[m.ip] = m;
  }
  for (const MemberInfo& m : committed_.members()) {
    if (m.ip == self_ip() || aborted.contains(m.ip)) continue;
    auto it = departures_.find(m.ip);
    pending_removes_[m.ip] =
        it == departures_.end() ? RemoveReason::kFailed : it->second;
  }
  for (util::IpAddress ip : drop) {
    if (!committed_.contains(ip)) continue;
    pending_removes_[ip] = drop_reason;
    departures_[ip] = drop_reason;
  }
  force_recommit_ = true;
}

void AdapterProtocol::twopc_timeout() {
  if (!proposal_) return;
  if (proposal_->attempt <= params_.twopc_retries) {
    ++proposal_->attempt;
    Prepare prepare{};
    prepare.view = proposal_->view;
    prepare.leader = self_ip();
    prepare.members = proposal_->membership.members();
    const net::Payload frame = framed(prepare);
    for (util::IpAddress ip : proposal_->awaiting) unicast(ip, frame);
    proposal_->timer =
        sim_.after(params_.twopc_timeout, [this] { twopc_timeout(); });
    return;
  }

  // Retries exhausted: commit the acknowledged subset. Restarting the 2PC
  // without the silent members livelocks under loss (they re-join via
  // beacons as fast as they are dropped), and committing them blind would
  // create phantom members (e.g. a moved leader's stale claims). Excluded
  // members that are in fact alive re-enter through discovery and a later,
  // independent recommit.
  for (util::IpAddress ip : proposal_->awaiting)
    if (committed_.contains(ip)) departures_[ip] = RemoveReason::kFailed;
  do_commit();
}

void AdapterProtocol::handle_prepare_ack(util::IpAddress src,
                                         const PrepareAck& msg) {
  GS_LOG(kDebug, "2pc") << self_ip() << " got " << (msg.ok ? "ack" : "nack")
                        << " v" << msg.view << " from " << src
                        << (proposal_ ? "" : " (no proposal)");
  if (!proposal_ || msg.view != proposal_->view) return;
  if (!proposal_->awaiting.count(src)) return;

  if (msg.ok) {
    proposal_->awaiting.erase(src);
    if (proposal_->awaiting.empty()) do_commit();
    return;
  }

  // The participant is bound to a competing or newer view: step the clock
  // past it, drop the participant from this membership change, and retry.
  bump_clock(msg.holder_view);
  trace(obs::TraceKind::kTwoPcAbort, src, proposal_->view, 1);
  const MembershipView aborted = std::move(proposal_->membership);
  proposal_->timer.cancel();
  proposal_.reset();
  reinstate_proposal_state(aborted, {src}, RemoveReason::kLeft);
  schedule_change();
}

void AdapterProtocol::do_commit() {
  GS_CHECK(proposal_.has_value());
  // Final membership = the acknowledged subset (awaiting still holds the
  // silent participants; on the all-acked path it is empty).
  std::vector<MemberInfo> acked;
  for (const MemberInfo& m : proposal_->membership.members())
    if (m.ip == self_ip() || !proposal_->awaiting.count(m.ip))
      acked.push_back(m);
  MembershipView membership =
      MembershipView::make(proposal_->view, std::move(acked));
  proposal_->timer.cancel();
  proposal_.reset();

  Commit commit{};
  commit.view = membership.view();
  commit.members = membership.members();
  if (util::Logger::instance().enabled(util::LogLevel::kDebug)) {
    util::LogLine line(util::LogLevel::kDebug, "2pc");
    line << self_ip() << " commits v" << commit.view << " members:";
    for (const MemberInfo& m : commit.members) line << " " << m.ip;
  }
  const net::Payload frame = framed(commit);
  for (const MemberInfo& m : membership.members())
    if (m.ip != self_ip()) unicast(m.ip, frame);
  trace(obs::TraceKind::kTwoPcCommit, {}, commit.view, membership.size());

  install(std::move(membership));
  if (dirty_) {
    dirty_ = false;
    schedule_change();
  }
}

// --- Leader duties -----------------------------------------------------------------

void AdapterProtocol::handle_beacon(util::IpAddress src, const Beacon& msg) {
  bump_clock(msg.view);
  if (msg.self.ip == self_ip()) return;

  switch (state_) {
    case AdapterState::kBeaconing:
    case AdapterState::kWaitingForLeader: {
      HeardBeacon heard;
      heard.info = msg.self;
      heard.is_leader = msg.is_leader;
      heard.view = msg.view;
      heard_[msg.self.ip] = heard;
      trace(obs::TraceKind::kBeaconHeard, msg.self.ip, msg.view,
            msg.is_leader ? 1 : 0);
      return;
    }
    case AdapterState::kLeader:
      break;  // handled below
    case AdapterState::kMember:
    case AdapterState::kIdle:
      return;  // "only the leader continues to multicast and listen" (§2.1)
  }
  (void)src;

  if (!msg.is_leader) {
    // An uncommitted adapter is announcing itself. Absorb it if we outrank
    // it; if it outranks us it will form its own group and absorb us via
    // the leader-merge path, preserving the highest-IP-leads invariant.
    if (msg.self.ip > self_ip()) return;
    if (committed_.contains(msg.self.ip)) {
      // One of our members lost its state (e.g. it reset after a transient
      // isolation): force a re-prepare so it re-installs the view.
      force_recommit_ = true;
    }
    pending_adds_[msg.self.ip] = msg.self;
    pending_removes_.erase(msg.self.ip);
    schedule_change();
    return;
  }

  // Another committed leader shares this segment: merge. The lower-IP
  // leader surrenders its membership to the higher (§2.1).
  if (msg.self.ip > self_ip()) maybe_send_join(msg.self.ip);
}

void AdapterProtocol::maybe_send_join(util::IpAddress higher_leader) {
  const sim::SimTime now = sim_.now();
  if (join_target_ == higher_leader && last_join_sent_ >= 0 &&
      now - last_join_sent_ < params_.join_retry)
    return;
  join_target_ = higher_leader;
  last_join_sent_ = now;
  ++stats_.joins_requested;
  trace(obs::TraceKind::kJoinRequested, higher_leader);

  JoinRequest join{};
  join.view = committed_.empty() ? 0 : committed_.view();
  // Claim only members we can actually speak for: during a takeover the
  // committed view is stale and may still list the dead old leader (or
  // other higher-IP members we excluded) — those are not ours to merge.
  for (const MemberInfo& m : committed_.members())
    if (m.ip <= self_ip()) join.members.push_back(m);
  if (join.members.empty()) join.members.push_back(self_);
  unicast(higher_leader, framed(join));
}

void AdapterProtocol::handle_join_request(const JoinRequest& msg) {
  bump_clock(msg.view);
  if (state_ != AdapterState::kLeader) return;
  for (const MemberInfo& m : msg.members) {
    // Skip anything that would outrank us: a stale requester (e.g. one
    // mid-takeover) may still list members above both of us; absorbing
    // them would break the highest-IP-leads invariant, and if they are
    // alive their own discovery brings them in the right way around.
    if (m.ip >= self_ip()) continue;
    if (committed_.contains(m.ip)) {
      // Already a member on paper, yet it is requesting to join: it never
      // installed our view (lost commit, or it was committed while silent).
      // Re-prepare so it can actually sync up.
      force_recommit_ = true;
    }
    pending_adds_[m.ip] = m;
    pending_removes_.erase(m.ip);
  }
  schedule_change();
}

void AdapterProtocol::leader_handle_suspicion(util::IpAddress suspect,
                                              util::IpAddress reporter) {
  if (suspect == self_ip()) return;
  if (!committed_.contains(suspect)) return;
  if (pending_removes_.count(suspect)) return;

  SuspicionState& s = suspicions_[suspect];
  s.reporters.insert(reporter);

  if (params_.leader_verify) {
    // "the AMG leader first attempts to verify the reported failure" (§2.1).
    if (!s.probing) start_verification(suspect);
    return;
  }
  const int needed = fd_ ? fd_->consensus_reporters() : 1;
  if (static_cast<int>(s.reporters.size()) >= needed) declare_dead(suspect);
}

void AdapterProtocol::start_verification(util::IpAddress suspect) {
  SuspicionState& s = suspicions_[suspect];
  s.probing = true;
  do {
    s.probe_nonce = rng_.next();
  } while (s.probe_nonce == 0);
  s.probes_left = params_.probe_retries + 1;

  Probe probe{};
  probe.nonce = s.probe_nonce;
  unicast(suspect, framed(probe));
  ++stats_.probes_sent;
  trace(obs::TraceKind::kProbeSent, suspect);
  --s.probes_left;
  s.probe_timer = sim_.after(params_.probe_timeout,
                             [this, suspect] { probe_timeout(suspect); });
}

void AdapterProtocol::probe_timeout(util::IpAddress suspect) {
  auto it = suspicions_.find(suspect);
  if (it == suspicions_.end() || !it->second.probing) return;
  SuspicionState& s = it->second;
  if (s.probes_left > 0) {
    Probe probe{};
    probe.nonce = s.probe_nonce;
    unicast(suspect, framed(probe));
    ++stats_.probes_sent;
    trace(obs::TraceKind::kProbeSent, suspect);
    --s.probes_left;
    s.probe_timer = sim_.after(params_.probe_timeout,
                               [this, suspect] { probe_timeout(suspect); });
    return;
  }
  declare_dead(suspect);
}

void AdapterProtocol::declare_dead(util::IpAddress ip) {
  GS_LOG(kDebug, "amg") << self_ip() << " declares " << ip << " dead";
  ++stats_.deaths_declared;
  trace(obs::TraceKind::kDeathDeclared, ip);
  auto it = suspicions_.find(ip);
  if (it != suspicions_.end()) {
    it->second.probe_timer.cancel();
    suspicions_.erase(it);
  }
  pending_adds_.erase(ip);
  pending_removes_[ip] = RemoveReason::kFailed;
  departures_[ip] = RemoveReason::kFailed;
  if (hooks_.on_death_declared) hooks_.on_death_declared(ip);
  schedule_change();
}

void AdapterProtocol::arm_report_debounce() {
  // Every membership change while the AMG settles pushes the debounce out;
  // move the pending deadline in place when there is one (same callback).
  if (report_timer_.rearm_after(params_.amg_stable_wait)) return;
  report_timer_ = sim_.after(params_.amg_stable_wait, [this] {
    if (state_ == AdapterState::kLeader && !committed_.empty() &&
        hooks_.on_report_pending)
      hooks_.on_report_pending();
  });
}

MembershipReport AdapterProtocol::build_report() {
  GS_CHECK(state_ == AdapterState::kLeader && !committed_.empty());
  MembershipReport rep;
  rep.seq = ++report_seq_;
  rep.view = committed_.view();
  rep.leader = self_;
  rep.full = need_full_;
  need_full_ = false;

  std::set<util::IpAddress> current;
  for (const MemberInfo& m : committed_.members()) current.insert(m.ip);

  if (rep.full) {
    rep.added = committed_.members();
    // A full snapshot still conveys known deaths (e.g. the old leader a
    // takeover removed): GSC would otherwise never hear of them, since a
    // fresh leadership always starts with a full report.
    for (const auto& [ip, reason] : departures_) {
      if (current.count(ip)) continue;
      rep.removed.push_back(RemovedMember{ip, reason});
    }
  } else {
    for (const MemberInfo& m : committed_.members())
      if (!last_acked_membership_.count(m.ip)) rep.added.push_back(m);
    for (util::IpAddress ip : last_acked_membership_) {
      if (current.count(ip)) continue;
      RemovedMember removed;
      removed.ip = ip;
      auto it = departures_.find(ip);
      removed.reason = it == departures_.end() ? RemoveReason::kLeft
                                               : it->second;
      rep.removed.push_back(removed);
    }
  }
  pending_snapshot_ = PendingSnapshot{rep.seq, std::move(current)};
  return rep;
}

void AdapterProtocol::report_acked(std::uint64_t seq) {
  if (!pending_snapshot_ || pending_snapshot_->seq != seq) return;
  // Every departure outside the acked snapshot has now been conveyed.
  for (auto it = departures_.begin(); it != departures_.end();)
    it = pending_snapshot_->membership.count(it->first) ? ++it
                                                        : departures_.erase(it);
  last_acked_membership_ = std::move(pending_snapshot_->membership);
  pending_snapshot_.reset();
}

// --- Member duties --------------------------------------------------------------------

void AdapterProtocol::raise_suspicion(util::IpAddress suspect) {
  ++stats_.suspicions_raised;
  if (suspect == self_ip()) return;
  trace(obs::TraceKind::kSuspicionRaised, suspect);

  if (state_ == AdapterState::kLeader) {
    leader_handle_suspicion(suspect, self_ip());
    return;
  }
  if (state_ != AdapterState::kMember || committed_.empty()) return;
  locally_suspected_.insert(suspect);

  if (suspect != leader_ip()) {
    send_suspect(suspect, leader_ip());
    return;
  }

  // The leader itself is suspected: route the report to the first
  // not-yet-suspected successor by rank ("notification is sent to the
  // second ranked adapter", §2.1). If that successor is us, verify and
  // take over; if nobody reachable remains, we are alone — re-discover.
  for (std::size_t rank = 1; rank < committed_.size(); ++rank) {
    const util::IpAddress ip = committed_.member_at(rank).ip;
    if (ip == self_ip()) {
      begin_takeover_check();
      return;
    }
    if (locally_suspected_.count(ip)) continue;
    send_suspect(suspect, ip);
    return;
  }
  reset_to_discovery();
}

void AdapterProtocol::send_suspect(util::IpAddress suspect,
                                   util::IpAddress to) {
  if (outstanding_suspects_.count(suspect)) return;  // already in flight
  OutstandingSuspect out;
  out.to = to;
  out.tries = 1;
  out.timer = sim_.after(params_.suspect_retry,
                         [this, suspect] { suspect_retry_expired(suspect); });
  outstanding_suspects_[suspect] = std::move(out);

  Suspect msg{};
  msg.view = committed_.view();
  msg.suspect = suspect;
  unicast(to, framed(msg));
  ++stats_.suspects_sent;
  trace(obs::TraceKind::kSuspectSent, suspect);
}

void AdapterProtocol::suspect_retry_expired(util::IpAddress suspect) {
  auto it = outstanding_suspects_.find(suspect);
  if (it == outstanding_suspects_.end()) return;
  OutstandingSuspect& out = it->second;
  if (out.tries < params_.suspect_retries) {
    ++out.tries;
    Suspect msg{};
    msg.view = committed_.view();
    msg.suspect = suspect;
    unicast(out.to, framed(msg));
    ++stats_.suspects_sent;
    trace(obs::TraceKind::kSuspectSent, suspect);
    out.timer = sim_.after(params_.suspect_retry,
                           [this, suspect] { suspect_retry_expired(suspect); });
    return;
  }

  // The recipient never acknowledged: it is unreachable from here.
  const util::IpAddress failed_recipient = out.to;
  outstanding_suspects_.erase(it);
  if (state_ != AdapterState::kMember) return;

  if (failed_recipient == leader_ip() && suspect != leader_ip()) {
    // "it can no longer reach the group leader" (§3.1): escalate.
    raise_suspicion(leader_ip());
    return;
  }
  // A successor was unreachable during leader suspicion: mark it and walk
  // to the next rank.
  locally_suspected_.insert(failed_recipient);
  if (suspect == leader_ip()) raise_suspicion(leader_ip());
}

void AdapterProtocol::begin_takeover_check() {
  if (takeover_) return;
  Takeover takeover;
  do {
    takeover.nonce = rng_.next();
  } while (takeover.nonce == 0);
  takeover.probes_left = params_.probe_retries + 1;
  takeover_ = std::move(takeover);

  Probe probe{};
  probe.nonce = takeover_->nonce;
  unicast(leader_ip(), framed(probe));
  ++stats_.probes_sent;
  --takeover_->probes_left;
  takeover_->timer = sim_.after(params_.probe_timeout,
                                [this] { takeover_probe_timeout(); });
}

void AdapterProtocol::takeover_probe_timeout() {
  if (!takeover_) return;
  if (takeover_->probes_left > 0) {
    Probe probe{};
    probe.nonce = takeover_->nonce;
    unicast(leader_ip(), framed(probe));
    ++stats_.probes_sent;
    --takeover_->probes_left;
    takeover_->timer = sim_.after(params_.probe_timeout,
                                  [this] { takeover_probe_timeout(); });
    return;
  }
  do_takeover();
}

void AdapterProtocol::do_takeover() {
  takeover_.reset();
  if (state_ != AdapterState::kMember || committed_.empty()) return;
  ++stats_.takeovers;
  trace(obs::TraceKind::kTakeover, leader_ip());
  GS_LOG(kDebug, "amg") << self_ip() << " taking over leadership from "
                        << leader_ip();

  const auto my_rank = committed_.rank_of(self_ip());
  GS_CHECK(my_rank.has_value());

  // Exclude the dead leader and every higher-ranked member: succession only
  // reaches us once all of them are suspected or unreachable, and the
  // coordinator of a proposal must hold its highest IP. A falsely excluded
  // member recovers through StaleNotice + re-discovery.
  pending_removes_[leader_ip()] = RemoveReason::kFailed;
  departures_[leader_ip()] = RemoveReason::kFailed;
  for (std::size_t rank = 1; rank < *my_rank; ++rank) {
    const util::IpAddress ip = committed_.member_at(rank).ip;
    pending_removes_[ip] = RemoveReason::kFailed;
    departures_[ip] = RemoveReason::kFailed;
  }
  state_ = AdapterState::kLeader;
  need_full_ = true;  // fresh leadership: establish the group at GSC anew
  force_recommit_ = true;
  propose();
}

void AdapterProtocol::reset_to_discovery() {
  ++stats_.resets;
  trace(obs::TraceKind::kReset);
  GS_LOG(kDebug, "amg") << self_ip() << " resetting to discovery";
  stop_fd();
  clear_member_duty_state();
  clear_leader_duty_state();
  committed_ = MembershipView();
  committed_at_ = -1;
  if (pending_prepare_) {
    pending_prepare_->expiry.cancel();
    pending_prepare_.reset();
  }
  stale_notice_sent_.clear();
  if (hooks_.on_reset) hooks_.on_reset();
  begin_beaconing();
}

// --- Shared helpers ------------------------------------------------------------------

void AdapterProtocol::start_fd() {
  stop_fd();
  FdContext ctx;
  ctx.sim = &sim_;
  ctx.params = &params_;
  ctx.self = self_ip();
  ctx.send = [this](util::IpAddress to, net::Payload frame) {
    unicast(to, std::move(frame));
  };
  ctx.suspect = [this](util::IpAddress ip) { raise_suspicion(ip); };
  ctx.loopback_ok = net_.loopback_ok;
  ctx.rng = rng_.fork(0xFD + committed_.view());
  ctx.encode_scratch = &scratch_;
  fd_ = make_failure_detector(params_.fd_kind, std::move(ctx));
  fd_->start(committed_);
}

void AdapterProtocol::stop_fd() {
  if (fd_) {
    fd_->stop();
    fd_.reset();
  }
}

void AdapterProtocol::clear_member_duty_state() {
  for (auto& [ip, out] : outstanding_suspects_) out.timer.cancel();
  outstanding_suspects_.clear();
  locally_suspected_.clear();
  if (takeover_) {
    takeover_->timer.cancel();
    takeover_.reset();
  }
}

void AdapterProtocol::clear_leader_duty_state() {
  if (proposal_) {
    // Leadership ended (demotion, reset, or shutdown) with a round still
    // uncommitted: the proposal dies here, b=2 distinguishes it from a
    // nack abort.
    trace(obs::TraceKind::kTwoPcAbort, {}, proposal_->view, 2);
    proposal_->timer.cancel();
    proposal_.reset();
  }
  change_timer_.cancel();
  dirty_ = false;
  force_recommit_ = false;
  pending_adds_.clear();
  pending_removes_.clear();
  for (auto& [ip, s] : suspicions_) s.probe_timer.cancel();
  suspicions_.clear();
  join_target_ = util::IpAddress();
  last_join_sent_ = -1;
  report_timer_.cancel();
  // Reporting restarts from scratch on the next leadership.
  need_full_ = true;
  last_acked_membership_.clear();
  pending_snapshot_.reset();
  departures_.clear();
}

// --- Dispatch -------------------------------------------------------------------------

HandleResult AdapterProtocol::handle_frame(util::IpAddress src, MsgType type,
                                           FrameRef frame) {
  // Every case decodes through frame.get(): the first receiver of a shared
  // payload fills its cache, later receivers read it. `scratch` only
  // engages when the payload is unshared or the cache is disabled.
  switch (type) {
    case MsgType::kBeacon: {
      std::optional<Beacon> scratch;
      const Beacon* msg = frame.get(scratch);
      if (msg == nullptr) return HandleResult::kDecodeError;
      handle_beacon(src, *msg);
      return HandleResult::kHandled;
    }
    case MsgType::kJoinRequest: {
      std::optional<JoinRequest> scratch;
      const JoinRequest* msg = frame.get(scratch);
      if (msg == nullptr) return HandleResult::kDecodeError;
      handle_join_request(*msg);
      return HandleResult::kHandled;
    }
    case MsgType::kPrepare: {
      std::optional<Prepare> scratch;
      const Prepare* msg = frame.get(scratch);
      if (msg == nullptr) return HandleResult::kDecodeError;
      handle_prepare(src, *msg);
      return HandleResult::kHandled;
    }
    case MsgType::kPrepareAck: {
      std::optional<PrepareAck> scratch;
      const PrepareAck* msg = frame.get(scratch);
      if (msg == nullptr) return HandleResult::kDecodeError;
      handle_prepare_ack(src, *msg);
      return HandleResult::kHandled;
    }
    case MsgType::kCommit: {
      std::optional<Commit> scratch;
      const Commit* msg = frame.get(scratch);
      if (msg == nullptr) return HandleResult::kDecodeError;
      handle_commit(*msg);
      return HandleResult::kHandled;
    }
    case MsgType::kHeartbeat: {
      std::optional<Heartbeat> scratch;
      const Heartbeat* msg = frame.get(scratch);
      if (msg == nullptr) return HandleResult::kDecodeError;
      bump_clock(msg->view);
      maybe_implicit_commit(msg->view);
      if (is_committed() && committed_.contains(src)) {
        if (fd_) fd_->on_heartbeat(src, *msg);
        return HandleResult::kHandled;
      }
      if (is_committed() && msg->view <= committed_.view()) {
        // A stale ex-member is still heartbeating us: tell it to rejoin.
        // Equality counts as stale too — view numbers of *different* group
        // incarnations are not ordered, and a restarted neighbor's new group
        // can land on exactly our number. A genuinely newer view that adds
        // us keeps msg->view strictly above anything we have committed, so
        // healthy group-mates are never told off.
        auto& last = stale_notice_sent_[src];
        if (last == 0 || sim_.now() - last >= kStaleNoticeWindow) {
          last = sim_.now();
          StaleNotice notice{};
          notice.current_view = committed_.view();
          unicast(src, framed(notice));
          ++stats_.stale_notices_sent;
        }
      }
      return HandleResult::kHandled;
    }
    case MsgType::kSuspect: {
      std::optional<Suspect> scratch;
      const Suspect* msg = frame.get(scratch);
      if (msg == nullptr) return HandleResult::kDecodeError;
      bump_clock(msg->view);
      maybe_implicit_commit(msg->view);
      SuspectAck ack{};
      ack.view = msg->view;
      ack.suspect = msg->suspect;
      unicast(src, framed(ack));
      if (msg->suspect == self_ip()) return HandleResult::kHandled;
      if (state_ == AdapterState::kLeader) {
        leader_handle_suspicion(msg->suspect, src);
      } else if (state_ == AdapterState::kMember && !committed_.empty() &&
                 msg->suspect == leader_ip() && committed_.contains(src)) {
        // We were told the leader is dead. Run the same successor walk a
        // local suspicion would: if every rank above us is already suspect
        // we verify and take over; otherwise we forward toward the true
        // successor (the reporter may simply have been unable to reach it).
        raise_suspicion(msg->suspect);
      }
      return HandleResult::kHandled;
    }
    case MsgType::kSuspectAck: {
      std::optional<SuspectAck> scratch;
      const SuspectAck* msg = frame.get(scratch);
      if (msg == nullptr) return HandleResult::kDecodeError;
      auto it = outstanding_suspects_.find(msg->suspect);
      if (it != outstanding_suspects_.end() && it->second.to == src) {
        it->second.timer.cancel();
        outstanding_suspects_.erase(it);
      }
      return HandleResult::kHandled;
    }
    case MsgType::kProbe: {
      // Liveness probes are answered in every state: the question is "is
      // this adapter alive", not "is it in my group". The ack additionally
      // states whether we lead a committed view containing the prober, so a
      // takeover probe can distinguish "leader alive and still mine" from
      // "alive, but it restarted and abandoned us".
      std::optional<Probe> scratch;
      const Probe* msg = frame.get(scratch);
      if (msg == nullptr) return HandleResult::kDecodeError;
      ProbeAck ack{};
      ack.nonce = msg->nonce;
      ack.leads_prober = state_ == AdapterState::kLeader && is_committed() &&
                         committed_.contains(src);
      unicast(src, framed(ack));
      return HandleResult::kHandled;
    }
    case MsgType::kProbeAck: {
      std::optional<ProbeAck> scratch;
      const ProbeAck* msg = frame.get(scratch);
      if (msg == nullptr) return HandleResult::kDecodeError;
      if (takeover_ && msg->nonce == takeover_->nonce) {
        takeover_->timer.cancel();
        if (msg->leads_prober) {
          // The leader is alive and still counts us a member; stand down.
          takeover_.reset();
          locally_suspected_.erase(leader_ip());
          return HandleResult::kHandled;
        }
        // Alive, but it no longer leads a view containing us: the leader
        // restarted (sub-detection-threshold blip) or was absorbed into
        // another group, silently orphaning this one. Mere liveness must
        // not veto the succession — leadership of our view is vacant.
        do_takeover();
        return HandleResult::kHandled;
      }
      for (auto it = suspicions_.begin(); it != suspicions_.end(); ++it) {
        if (it->second.probing && it->second.probe_nonce == msg->nonce) {
          ++stats_.probes_refuted;
          trace(obs::TraceKind::kProbeRefuted, it->first);
          it->second.probe_timer.cancel();
          suspicions_.erase(it);
          return HandleResult::kHandled;
        }
      }
      return HandleResult::kHandled;
    }
    case MsgType::kStaleNotice: {
      std::optional<StaleNotice> scratch;
      const StaleNotice* msg = frame.get(scratch);
      if (msg == nullptr) return HandleResult::kDecodeError;
      bump_clock(msg->current_view);
      if (state_ == AdapterState::kMember ||
          state_ == AdapterState::kWaitingForLeader)
        reset_to_discovery();
      return HandleResult::kHandled;
    }
    case MsgType::kPing: {
      std::optional<Ping> scratch;
      const Ping* msg = frame.get(scratch);
      if (msg == nullptr) return HandleResult::kDecodeError;
      PingAck ack{};
      ack.nonce = msg->nonce;
      ack.target = self_ip();
      unicast(msg->origin, framed(ack));
      return HandleResult::kHandled;
    }
    case MsgType::kPingAck: {
      std::optional<PingAck> scratch;
      const PingAck* msg = frame.get(scratch);
      if (msg == nullptr) return HandleResult::kDecodeError;
      if (fd_) fd_->on_ping_ack(src, *msg);
      return HandleResult::kHandled;
    }
    case MsgType::kPingReq: {
      std::optional<PingReq> scratch;
      const PingReq* msg = frame.get(scratch);
      if (msg == nullptr) return HandleResult::kDecodeError;
      if (fd_) fd_->on_ping_req(src, *msg);
      return HandleResult::kHandled;
    }
    case MsgType::kSubgroupPoll: {
      std::optional<SubgroupPoll> scratch;
      const SubgroupPoll* msg = frame.get(scratch);
      if (msg == nullptr) return HandleResult::kDecodeError;
      SubgroupPollAck ack{};
      ack.seq = msg->seq;
      unicast(src, framed(ack));
      return HandleResult::kHandled;
    }
    case MsgType::kSubgroupPollAck: {
      std::optional<SubgroupPollAck> scratch;
      const SubgroupPollAck* msg = frame.get(scratch);
      if (msg == nullptr) return HandleResult::kDecodeError;
      if (fd_) fd_->on_subgroup_poll_ack(src, *msg);
      return HandleResult::kHandled;
    }
    case MsgType::kMembershipReport:
    case MsgType::kReportAck:
    case MsgType::kDomainReport:
    case MsgType::kDomainReportAck:
      // Routed by the daemon before frames reach the protocol.
      return HandleResult::kHandled;
  }
  return HandleResult::kUnknownType;
}

}  // namespace gs::proto
