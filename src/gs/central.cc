#include "gs/central.h"

#include <algorithm>
#include <sstream>

#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"

namespace gs::proto {

std::string_view to_string(FarmEvent::Kind kind) {
  switch (kind) {
    case FarmEvent::Kind::kGscActivated: return "gsc-activated";
    case FarmEvent::Kind::kGscDeactivated: return "gsc-deactivated";
    case FarmEvent::Kind::kInitialTopologyStable: return "topology-stable";
    case FarmEvent::Kind::kAdapterFailed: return "adapter-failed";
    case FarmEvent::Kind::kAdapterRecovered: return "adapter-recovered";
    case FarmEvent::Kind::kNodeFailed: return "node-failed";
    case FarmEvent::Kind::kNodeRecovered: return "node-recovered";
    case FarmEvent::Kind::kSwitchFailed: return "switch-failed";
    case FarmEvent::Kind::kSwitchRecovered: return "switch-recovered";
    case FarmEvent::Kind::kMoveInitiated: return "move-initiated";
    case FarmEvent::Kind::kMoveCompleted: return "move-completed";
    case FarmEvent::Kind::kUnexpectedMove: return "unexpected-move";
    case FarmEvent::Kind::kInconsistencyFound: return "inconsistency";
    case FarmEvent::Kind::kAdapterQuarantined: return "adapter-quarantined";
  }
  return "?";
}

Central::Central(sim::TimeSource& clock, const Params& params,
                 config::ConfigDb* db, net::SwitchConsole* console)
    : sim_(clock), params_(params), db_(db), console_(console) {}

Central::~Central() { cancel_all_timers(); }

void Central::cancel_all_timers() {
  for (auto& [ip, state] : expected_moves_) state.deadline.cancel();
  for (auto& [ip, timer] : held_failures_) timer.cancel();
  stability_timer_.cancel();
  lease_timer_.cancel();
}

void Central::emit(FarmEvent event) {
  event.time = sim_.now();
  event.source = self_ip_;
  GS_LOG(kDebug, "gsc") << to_string(event.kind)
                        << (event.detail.empty() ? "" : ": ") << event.detail;
  event_bus_.publish(event);
}

void Central::trace(obs::TraceKind kind, util::IpAddress ip, std::uint64_t a) {
  obs::emit_trace(params_.trace, kind, sim_.now(), self_ip_, ip, a);
}

void Central::clear_all_state() {
  groups_.clear();
  adapters_.clear();
  for (auto& [ip, state] : expected_moves_) state.deadline.cancel();
  expected_moves_.clear();
  for (auto& [ip, timer] : held_failures_) timer.cancel();
  held_failures_.clear();
  stability_timer_.cancel();
  lease_timer_.cancel();
  stable_ = false;
  stable_time_ = -1;
  nodes_down_.clear();
  switches_down_.clear();
  snmp_wiring_.clear();
  quarantined_.clear();
  reports_received_ = 0;
}

void Central::activate(util::IpAddress self_admin_ip) {
  if (active_ && self_ip_ == self_admin_ip) return;
  clear_all_state();
  active_ = true;
  self_ip_ = self_admin_ip;
  arm_lease_sweep();
  if (observer_ != nullptr) observer_->central_activated();
  // Past the early-return above, the trace always means "fresh, empty
  // tables" — the span tracker relies on that to void its mirrored
  // verdicts.
  trace(obs::TraceKind::kGscActivated);
  FarmEvent event{};
  event.kind = FarmEvent::Kind::kGscActivated;
  event.ip = self_admin_ip;
  emit(std::move(event));
}

void Central::deactivate() {
  if (!active_) return;
  active_ = false;
  clear_all_state();
  if (observer_ != nullptr) observer_->central_deactivated();
  trace(obs::TraceKind::kGscDeactivated);
  FarmEvent event{};
  event.kind = FarmEvent::Kind::kGscDeactivated;
  event.ip = self_ip_;
  emit(std::move(event));
  self_ip_ = util::IpAddress();
}

void Central::arm_stability_timer() {
  if (stable_) return;
  stability_timer_.cancel();
  stability_timer_ = sim_.after(params_.gsc_stable_wait, [this] {
    stable_ = true;
    stable_time_ = sim_.now();
    FarmEvent event{};
    event.kind = FarmEvent::Kind::kInitialTopologyStable;
    emit(std::move(event));
  });
}

void Central::handle_report(util::IpAddress from,
                            const MembershipReport& report,
                            const std::function<void(const ReportAck&)>& reply) {
  (void)from;
  if (!active_) return;
  ++reports_received_;

  ReportAck ack{};
  ack.seq = report.seq;
  ack.leader = report.leader.ip;

  auto it = groups_.find(report.leader.ip);
  const bool duplicate =
      it != groups_.end() &&
      (report.full ? report.seq == it->second.last_seq &&
                         report.view == it->second.view
                   : report.seq <= it->second.last_seq);
  if (duplicate) {
    // Duplicate of something already applied — idempotent ack. A *full*
    // report is a duplicate only when BOTH its seq and view match the
    // record: a restarted leader's daemon numbers reports from scratch
    // (its counter died with the process), so its fresh snapshot can
    // collide with last_seq at small values while carrying a different
    // view. The (seq, view) pair identifies the snapshot; anything else —
    // regressed seq, colliding seq with a new view — is the leader
    // establishing the group anew. Ack-without-apply would wedge the
    // group here forever, every fresh report looking "stale". Let the
    // snapshot fall through and reset last_seq.
    //
    // Even a duplicate renews the group's lease: it is first-hand evidence
    // the leader is alive and still claims the group. Without this, a
    // leader whose reports all look stale would have its group lease-expired
    // and every member declared dead while the leader is healthy.
    it->second.last_report = sim_.now();
    if (report.full)
      obs::emit_trace(params_.trace, obs::TraceKind::kGscReportDup, sim_.now(),
                      self_ip_, report.leader.ip, report.seq, report.view);
    reply(ack);
    return;
  }
  if (!report.full &&
      (it == groups_.end() || report.seq != it->second.last_seq + 1)) {
    // Never saw this group's snapshot (fresh GSC) or a delta went missing.
    // A rejected delta for a KNOWN group still proves its leader alive and
    // claiming the group, so it renews the lease — without this, a leader
    // stuck in need_full (its fulls lost to the wire) has its live group
    // expired by lease_sweep while it is actively reporting. It must NOT
    // touch the member table though: when the group was already retired
    // (it == end), applying anything from the stale delta would resurrect
    // the group with stale members; the full we are asking for re-creates
    // it from scratch instead.
    if (it != groups_.end()) it->second.last_report = sim_.now();
    ack.need_full = true;
    reply(ack);
    return;
  }

  // Initial-topology stability means no *news* for gsc_stable_wait. A
  // periodic lease refresh re-states the view and member set we already
  // hold and must not push stability out, or a farm with report_refresh <
  // gsc_stable_wait would never stabilize.
  bool news = it == groups_.end() || report.view != it->second.view;
  if (!news && report.full) {
    std::set<util::IpAddress> incoming;
    for (const MemberInfo& m : report.added) incoming.insert(m.ip);
    news = incoming != it->second.members;
  } else if (!news) {
    news = !report.added.empty() || !report.removed.empty();
  }
  if (news) arm_stability_timer();

  Group& group = groups_[report.leader.ip];
  group.leader = report.leader;
  group.view = report.view;
  group.last_seq = report.seq;
  group.last_report = sim_.now();
  // Every report is first-hand evidence that its sending leader is alive,
  // overriding any stale death claim a third party may have lodged.
  attest_leader(report.leader);

  if (report.full) {
    const std::set<util::IpAddress> old_members = group.members;
    group.members.clear();
    for (const MemberInfo& m : report.added) {
      if (!claim_member(m, report.leader.ip, report.view)) continue;
      mark_alive(m, report.leader.ip);
    }
    // Members silently absent from the snapshot departed without a death
    // notice (e.g. merged away while we were failing over): unassign only.
    for (util::IpAddress ip : old_members) {
      if (group.members.count(ip)) continue;
      auto rec = adapters_.find(ip);
      if (rec != adapters_.end() && rec->second.group_leader == report.leader.ip)
        unassign(ip);
    }
    // A full snapshot can still carry deaths — notably the old leader a
    // takeover removed, which no delta will ever mention.
    for (const RemovedMember& rm : report.removed) {
      if (rm.ip == report.leader.ip) continue;  // a leader never removes itself
      if (group.members.count(rm.ip)) continue;  // re-added since
      auto rec = adapters_.find(rm.ip);
      if (rec == adapters_.end()) {
        // A death claim for an adapter this instance never learned of —
        // the victim was removed before our full-snapshot rebuild (GSC
        // failover or a healed partition island). Consuming the claim
        // here means no commit will ever follow; say so on the trace bus.
        if (rm.reason == RemoveReason::kFailed)
          trace(obs::TraceKind::kGscDeathUnknown, rm.ip);
        continue;
      }
      const util::IpAddress holder = rec->second.group_leader;
      // Skip if some third group claims the adapter (its reports win).
      if (!holder.is_unspecified() && holder != report.leader.ip &&
          holder != rm.ip)
        continue;
      if (holder == rm.ip && holder != report.leader.ip) {
        // The removed adapter leads a group of its own per our records.
        // Accept the death claim only if the reporter's group absorbed a
        // majority of that group's other members — the legitimate-takeover
        // signature. A single adapter that was moved or partitioned away
        // (§3.1) also believes its old leader died, but carries no such
        // majority, and must not be allowed to kill a live leader here.
        auto old_group = groups_.find(rm.ip);
        if (old_group != groups_.end()) {
          std::size_t peers = 0, absorbed = 0;
          for (util::IpAddress ip : old_group->second.members) {
            if (ip == rm.ip) continue;
            ++peers;
            if (group.members.count(ip)) ++absorbed;
          }
          if (peers > 0 && absorbed * 2 < peers) continue;
        }
      }
      if (rm.reason == RemoveReason::kFailed)
        mark_failed(rm.ip);
      else
        unassign(rm.ip);
    }
  } else {
    for (const MemberInfo& m : report.added) {
      if (!claim_member(m, report.leader.ip, report.view)) continue;
      mark_alive(m, report.leader.ip);
    }
    for (const RemovedMember& rm : report.removed) {
      auto rec = adapters_.find(rm.ip);
      if (rec == adapters_.end()) {
        // Same dead-end as the full-snapshot path: the claim is consumed
        // by an instance with no record to commit against.
        if (rm.reason == RemoveReason::kFailed)
          trace(obs::TraceKind::kGscDeathUnknown, rm.ip);
        continue;
      }
      if (rec->second.group_leader != report.leader.ip)
        continue;  // already claimed elsewhere (merge won the race)
      groups_[report.leader.ip].members.erase(rm.ip);
      if (rm.reason == RemoveReason::kFailed)
        mark_failed(rm.ip);
      else
        unassign(rm.ip);
    }
  }
  // Records left with no members — every claim fenced as stale, the leader
  // itself held by a fresher view, or a lone member unassigned away — carry
  // no information; drop them now rather than letting them sit until their
  // lease expires. This sweep is the ONLY place empty records are erased:
  // unassign() must not erase mid-report, because handle_report holds a
  // reference into groups_ across the reconciliation loops above.
  std::erase_if(groups_,
                [](const auto& entry) { return entry.second.members.empty(); });
  obs::emit_trace(params_.trace, obs::TraceKind::kGscReportApplied, sim_.now(),
                  self_ip_, report.leader.ip, report.seq, report.view);
  reply(ack);
}

void Central::arm_lease_sweep() {
  // Lease expiry only makes sense while leaders renew: with report_refresh
  // disabled a healthy-but-unchanged group never re-reports, and sweeping
  // would declare its whole membership dead on schedule.
  if (params_.group_lease <= 0 || params_.report_refresh <= 0) return;
  const sim::SimDuration period =
      std::max<sim::SimDuration>(params_.group_lease / 4, sim::kSecond);
  lease_timer_ = sim_.after(period, [this] { lease_sweep(); });
}

void Central::lease_sweep() {
  lease_timer_ = sim::Timer();
  if (!active_) return;
  // A group whose leader has been silent past its lease died wholesale:
  // there was no survivor left to send the death notice (§3's partition
  // corner — the last node of an isolated segment half going down). Leaders
  // refresh every report_refresh, so a live group never goes this quiet.
  std::vector<util::IpAddress> expired;
  for (const auto& [leader_ip, group] : groups_)
    if (sim_.now() - group.last_report > params_.group_lease)
      expired.push_back(leader_ip);
  for (util::IpAddress leader_ip : expired) {
    auto it = groups_.find(leader_ip);
    if (it == groups_.end()) continue;  // retired by an earlier expiry
    GS_LOG(kDebug, "gsc") << "group lease expired for leader " << leader_ip;
    const std::set<util::IpAddress> members = it->second.members;
    for (util::IpAddress ip : members) {
      if (ip == leader_ip) continue;
      auto rec = adapters_.find(ip);
      // Only members the expired group still owns: anyone a fresher group
      // has claimed since is accounted for by that group's lease.
      if (rec != adapters_.end() && rec->second.group_leader == leader_ip)
        mark_failed(ip);
    }
    auto leader_rec = adapters_.find(leader_ip);
    if (leader_rec != adapters_.end() &&
        leader_rec->second.group_leader == leader_ip)
      mark_failed(leader_ip);
    retire_group(leader_ip);  // mark_failed no-ops if already recorded dead
  }
  arm_lease_sweep();
}

void Central::attest_leader(const MemberInfo& leader) {
  auto it = adapters_.find(leader.ip);
  if (it == adapters_.end()) return;
  if (it->second.alive && !held_failures_.count(leader.ip)) return;
  // The adapter is talking while recorded dead (or dying): mark_alive sorts
  // out which story this is — a held failure becomes an unexpected move
  // (the §3.1 signature: the "new group" here is the mover's own
  // singleton), an expected move progresses, a committed death becomes a
  // recovery.
  mark_alive(leader, leader.ip);
}

bool Central::claim_member(const MemberInfo& m, util::IpAddress leader,
                           std::uint64_t view) {
  AdapterRec& rec = adapters_[m.ip];
  const util::IpAddress previous = rec.group_leader;
  if (!previous.is_unspecified() && previous != leader) {
    auto prev_group = groups_.find(previous);
    if (prev_group != groups_.end() && prev_group->second.members.count(m.ip) &&
        prev_group->second.view > view) {
      // View fence: a report must not steal a member a fresher view holds.
      // The race: a deposed leader's last report (sent before it learned of
      // the takeover) arrives after the new leader's snapshot — applying it
      // would resurrect the dead group with the members inside, and nothing
      // in the new leader's delta stream would ever claim them back.
      return false;
    }
    if (prev_group != groups_.end()) prev_group->second.members.erase(m.ip);
  }
  rec.group_leader = leader;
  groups_[leader].members.insert(m.ip);
  notify_changed(m.ip);

  // If this member used to lead a group of its own, that group has been
  // absorbed: retire it and release any members it still held.
  if (m.ip != leader) {
    auto absorbed = groups_.find(m.ip);
    if (absorbed != groups_.end()) {
      const std::set<util::IpAddress> orphans = absorbed->second.members;
      groups_.erase(absorbed);
      for (util::IpAddress ip : orphans) {
        if (ip == m.ip) continue;
        auto orphan_rec = adapters_.find(ip);
        if (orphan_rec != adapters_.end() &&
            orphan_rec->second.group_leader == m.ip)
          unassign(ip);
      }
    }
  }
  return true;
}

void Central::unassign(util::IpAddress ip) {
  auto it = adapters_.find(ip);
  if (it == adapters_.end()) return;
  auto group = groups_.find(it->second.group_leader);
  // Do not erase the record here even if it just became empty: handle_report
  // calls unassign() while holding a reference into groups_, and erasing the
  // referenced record would leave it dangling. The sweep at the end of
  // handle_report retires empty records instead.
  if (group != groups_.end()) group->second.members.erase(ip);
  it->second.group_leader = util::IpAddress();
  notify_changed(ip);
}

void Central::mark_alive(const MemberInfo& m, util::IpAddress leader) {
  AdapterRec& rec = adapters_[m.ip];
  const bool was_dead = !rec.alive && rec.last_change != 0;
  rec.info = m;
  rec.alive = true;
  rec.group_leader = leader;
  rec.last_change = sim_.now();
  notify_changed(m.ip);
  // Whatever story this turns out to be (held-failure move, expected move,
  // or plain recovery), the recorded verdict just flipped back to alive.
  if (was_dead) trace(obs::TraceKind::kGscAdapterAlive, m.ip);

  // A join while a failure notice is being held for the move window is the
  // §3.1 signature of a domain move GulfStream did not initiate.
  auto held = held_failures_.find(m.ip);
  if (held != held_failures_.end()) {
    held->second.cancel();
    held_failures_.erase(held);
    std::ostringstream detail;
    detail << m.ip << " reappeared under leader " << leader
           << " — inferred unexpected domain move";
    FarmEvent event{};
    event.kind = FarmEvent::Kind::kUnexpectedMove;
    event.ip = m.ip;
    event.node = m.node;
    event.detail = detail.str();
    emit(std::move(event));
    return;
  }

  auto move = expected_moves_.find(m.ip);
  if (move != expected_moves_.end()) {
    move->second.seen_join = true;
    maybe_complete_move(m.ip);
    return;
  }

  if (was_dead) {
    FarmEvent event{};
    event.kind = FarmEvent::Kind::kAdapterRecovered;
    event.ip = m.ip;
    event.node = m.node;
    emit(std::move(event));
    correlate_recovery(m.ip);
  }
}

void Central::retire_group(util::IpAddress leader_ip) {
  // A dead adapter leads nothing: drop any group still recorded under it.
  // Its surviving members were claimed by the successor's full report;
  // whoever remains goes unassigned until some leader claims them.
  auto led = groups_.find(leader_ip);
  if (led == groups_.end()) return;
  const std::set<util::IpAddress> orphans = led->second.members;
  groups_.erase(led);
  for (util::IpAddress orphan : orphans) {
    if (orphan == leader_ip) continue;
    auto rec = adapters_.find(orphan);
    if (rec != adapters_.end() && rec->second.group_leader == leader_ip) {
      rec->second.group_leader = util::IpAddress();
      notify_changed(orphan);
    }
  }
}

void Central::mark_failed(util::IpAddress ip) {
  auto it = adapters_.find(ip);
  if (it == adapters_.end() || !it->second.alive) return;
  it->second.alive = false;
  it->second.last_change = sim_.now();
  notify_changed(ip);

  retire_group(ip);
  if (it->second.group_leader == ip) it->second.group_leader = util::IpAddress();

  auto move = expected_moves_.find(ip);
  if (move != expected_moves_.end()) {
    // Expected: GSC performed this reconfiguration itself — "external
    // failure notifications are suppressed" (§3.1).
    move->second.seen_fail = true;
    maybe_complete_move(ip);
    return;
  }

  // Hold the external notification for the move window so a prompt rejoin
  // elsewhere can be recognized as a move rather than a death.
  trace(obs::TraceKind::kFailureHeld, ip);
  auto& timer = held_failures_[ip];
  timer.cancel();
  timer = sim_.after(params_.move_window, [this, ip] { commit_failure(ip); });
}

void Central::commit_failure(util::IpAddress ip) {
  held_failures_.erase(ip);
  auto it = adapters_.find(ip);
  if (it == adapters_.end() || it->second.alive) return;
  trace(obs::TraceKind::kFailureCommitted, ip);
  FarmEvent event{};
  event.kind = FarmEvent::Kind::kAdapterFailed;
  event.ip = ip;
  event.node = it->second.info.node;
  emit(std::move(event));
  correlate_failure(ip);
}

void Central::maybe_complete_move(util::IpAddress ip) {
  auto it = expected_moves_.find(ip);
  if (it == expected_moves_.end()) return;
  if (!(it->second.seen_fail && it->second.seen_join)) return;
  it->second.deadline.cancel();
  const util::VlanId target = it->second.target;
  expected_moves_.erase(it);
  FarmEvent event{};
  event.kind = FarmEvent::Kind::kMoveCompleted;
  event.ip = ip;
  event.vlan = target;
  emit(std::move(event));
}

// --- Correlation (§3) ---------------------------------------------------------

void Central::correlate_failure(util::IpAddress ip) {
  auto it = adapters_.find(ip);
  if (it == adapters_.end()) return;
  const util::NodeId node = it->second.info.node;

  // Node inference: "if all of the adapters connected to a server are
  // reported as failed, then we infer that the server itself has failed."
  if (node.valid() && !nodes_down_.count(node)) {
    std::size_t seen = 0;
    bool any_alive = false;
    for (const auto& [aip, rec] : adapters_) {
      if (rec.info.node != node) continue;
      ++seen;
      if (rec.alive) any_alive = true;
    }
    std::size_t expected = seen;
    if (db_) expected = db_->adapters_of_node(node).size();
    if (seen > 0 && !any_alive && seen >= expected) {
      nodes_down_.insert(node);
      obs::emit_trace(params_.trace, obs::TraceKind::kNodeDown, sim_.now(),
                      self_ip_, ip, 0, 0, {}, node);
      FarmEvent event{};
      event.kind = FarmEvent::Kind::kNodeFailed;
      event.node = node;
      emit(std::move(event));
    }
  }

  // Switch inference needs wiring knowledge — from the configuration
  // database ("At present, GulfStream Central relies on a configuration
  // database to identify how nodes are connected to routers and switches")
  // or from a prior SNMP walk of the switches (discover_wiring, the §3
  // future-work path).
  const auto wired = wired_switch_of(ip);
  if (wired && !switches_down_.count(*wired)) {
    bool all_failed = true;
    std::size_t seen = 0;
    for (util::IpAddress peer : ips_wired_to(*wired)) {
      auto status = adapters_.find(peer);
      if (status == adapters_.end()) {
        all_failed = false;  // never observed: cannot conclude
        break;
      }
      ++seen;
      if (status->second.alive) {
        all_failed = false;
        break;
      }
    }
    if (all_failed && seen > 0) {
      switches_down_.insert(*wired);
      FarmEvent event{};
      event.kind = FarmEvent::Kind::kSwitchFailed;
      event.switch_id = *wired;
      emit(std::move(event));
    }
  }
}

std::optional<util::SwitchId> Central::wired_switch_of(
    util::IpAddress ip) const {
  if (db_) {
    const auto rec = db_->adapter_by_ip(ip);
    if (rec && rec->wired_switch.valid()) return rec->wired_switch;
  }
  auto it = snmp_wiring_.find(ip);
  if (it != snmp_wiring_.end()) return it->second.wired_switch;
  return std::nullopt;
}

std::vector<util::IpAddress> Central::ips_wired_to(util::SwitchId sw) const {
  std::set<util::IpAddress> out;
  if (db_) {
    for (const config::AdapterRecord& rec : db_->adapters_on_switch(sw))
      out.insert(rec.ip);
  }
  for (const auto& [ip, wiring] : snmp_wiring_)
    if (wiring.wired_switch == sw) out.insert(ip);
  return {out.begin(), out.end()};
}

void Central::correlate_recovery(util::IpAddress ip) {
  auto it = adapters_.find(ip);
  if (it == adapters_.end()) return;
  const util::NodeId node = it->second.info.node;
  // "As soon as one of these adapters recovers, we infer that the
  // correlated node/router/switch has recovered."
  if (node.valid() && nodes_down_.count(node)) {
    nodes_down_.erase(node);
    FarmEvent event{};
    event.kind = FarmEvent::Kind::kNodeRecovered;
    event.node = node;
    emit(std::move(event));
  }
  const auto wired = wired_switch_of(ip);
  if (wired && switches_down_.count(*wired)) {
    switches_down_.erase(*wired);
    FarmEvent event{};
    event.kind = FarmEvent::Kind::kSwitchRecovered;
    event.switch_id = *wired;
    emit(std::move(event));
  }
}

// --- Introspection ---------------------------------------------------------------

std::vector<Central::GroupInfo> Central::groups() const {
  std::vector<GroupInfo> out;
  out.reserve(groups_.size());
  for (const auto& [leader_ip, group] : groups_) {
    GroupInfo info;
    info.leader = group.leader;
    info.view = group.view;
    info.members.assign(group.members.begin(), group.members.end());
    out.push_back(std::move(info));
  }
  return out;
}

std::optional<Central::AdapterStatus> Central::adapter_status(
    util::IpAddress ip) const {
  auto it = adapters_.find(ip);
  if (it == adapters_.end()) return std::nullopt;
  AdapterStatus status;
  status.info = it->second.info;
  status.alive = it->second.alive;
  status.group_leader = it->second.group_leader;
  status.last_change = it->second.last_change;
  auto group = groups_.find(it->second.group_leader);
  if (group != groups_.end()) status.view = group->second.view;
  return status;
}

std::vector<Central::AdapterStatus> Central::adapter_table() const {
  std::vector<AdapterStatus> out;
  out.reserve(adapters_.size());
  for (const auto& [ip, rec] : adapters_) {
    AdapterStatus status;
    status.info = rec.info;
    status.alive = rec.alive;
    status.group_leader = rec.group_leader;
    status.last_change = rec.last_change;
    auto group = groups_.find(rec.group_leader);
    if (group != groups_.end()) status.view = group->second.view;
    out.push_back(status);
  }
  return out;
}

std::size_t Central::alive_adapter_count() const {
  std::size_t n = 0;
  for (const auto& [ip, rec] : adapters_)
    if (rec.alive) ++n;
  return n;
}

// --- Verification -----------------------------------------------------------------

std::vector<config::Inconsistency> Central::verify_now() {
  if (!db_) return {};

  // Map each discovered group to a VLAN by majority vote over the expected
  // VLANs of its database-known members; adapters the database does not
  // know inherit the group VLAN (the verifier flags them as unknown).
  std::vector<config::DiscoveredAdapter> discovered;
  for (const auto& [leader_ip, group] : groups_) {
    std::map<util::VlanId, std::size_t> votes;
    for (util::IpAddress ip : group.members) {
      const auto rec = db_->adapter_by_ip(ip);
      if (rec) ++votes[rec->expected_vlan];
    }
    util::VlanId group_vlan;
    std::size_t best = 0;
    for (const auto& [vlan, count] : votes) {
      if (count > best) {
        best = count;
        group_vlan = vlan;
      }
    }
    for (util::IpAddress ip : group.members) {
      auto status = adapters_.find(ip);
      if (status == adapters_.end() || !status->second.alive) continue;
      discovered.push_back(config::DiscoveredAdapter{ip, group_vlan});
    }
  }

  config::Verifier verifier(*db_);
  auto findings = verifier.verify(discovered);
  // Adapters already disabled onto the quarantine VLAN are a handled,
  // known inconsistency: do not re-flag them every pass.
  std::erase_if(findings, [this](const config::Inconsistency& f) {
    return quarantined_.count(f.ip) > 0;
  });
  trace(obs::TraceKind::kVerifyDecision, {}, findings.size());
  for (const config::Inconsistency& finding : findings) {
    FarmEvent event{};
    event.kind = FarmEvent::Kind::kInconsistencyFound;
    event.ip = finding.ip;
    event.vlan = finding.discovered_vlan;
    event.detail = finding.detail;
    emit(std::move(event));
  }

  // §2.2: "Inconsistencies can be flagged and the affected adapters
  // disabled, for security reasons, until conflicts are resolved."
  if (quarantine_vlan_.valid() && console_ != nullptr) {
    for (const config::Inconsistency& finding : findings) {
      if (finding.kind == config::InconsistencyKind::kWrongVlan) {
        const auto rec = db_->adapter_by_ip(finding.ip);
        if (rec)
          quarantine(finding.ip, rec->wired_switch, rec->wired_port,
                     finding.discovered_vlan);
      } else if (finding.kind == config::InconsistencyKind::kUnknownAdapter) {
        // No database record — but SNMP discovery may have located it.
        const auto wiring = discovered_wiring(finding.ip);
        if (wiring)
          quarantine(finding.ip, wiring->wired_switch, wiring->wired_port,
                     finding.discovered_vlan);
      }
    }
  }
  return findings;
}

// --- SNMP wiring discovery and audit (§3 future work) ---------------------------

std::size_t Central::discover_wiring(
    const std::vector<util::SwitchId>& switches) {
  if (!active_ || console_ == nullptr) return 0;

  // Resolve bridge-table MACs against the identities the AMG leaders have
  // reported: the reports carry each member's MAC alongside its IP.
  std::map<util::MacAddress, util::IpAddress> by_mac;
  for (const auto& [ip, rec] : adapters_) by_mac[rec.info.mac] = ip;

  std::size_t resolved = 0;
  for (util::SwitchId sw : switches) {
    const auto ports = console_->walk_ports(sw);
    if (!ports) continue;  // switch down or console unreachable
    for (const net::SwitchConsole::PortInfo& info : *ports) {
      if (!info.adapter.valid()) continue;
      auto it = by_mac.find(info.mac);
      if (it == by_mac.end()) continue;  // station never reported
      snmp_wiring_[it->second] =
          WiringRecord{sw, info.port, info.vlan};
      ++resolved;
    }
  }
  return resolved;
}

std::optional<Central::WiringRecord> Central::discovered_wiring(
    util::IpAddress ip) const {
  auto it = snmp_wiring_.find(ip);
  if (it == snmp_wiring_.end()) return std::nullopt;
  return it->second;
}

std::vector<Central::WiringMismatch> Central::audit_wiring() {
  std::vector<WiringMismatch> mismatches;
  if (db_ == nullptr) return mismatches;
  for (const auto& [ip, actual] : snmp_wiring_) {
    const auto expected = db_->adapter_by_ip(ip);
    if (!expected) continue;  // the verifier flags unknown adapters
    if (expected->wired_switch == actual.wired_switch &&
        expected->wired_port == actual.wired_port)
      continue;
    WiringMismatch mismatch;
    mismatch.ip = ip;
    mismatch.db_switch = expected->wired_switch;
    mismatch.db_port = expected->wired_port;
    mismatch.actual_switch = actual.wired_switch;
    mismatch.actual_port = actual.wired_port;
    mismatches.push_back(mismatch);

    std::ostringstream detail;
    detail << ip << " wired to " << actual.wired_switch << "/"
           << actual.wired_port << " but the database says "
           << expected->wired_switch << "/" << expected->wired_port;
    FarmEvent event{};
    event.kind = FarmEvent::Kind::kInconsistencyFound;
    event.ip = ip;
    event.detail = detail.str();
    emit(std::move(event));
  }
  return mismatches;
}

// --- Quarantine (§2.2) -----------------------------------------------------------

void Central::quarantine(util::IpAddress ip, util::SwitchId sw,
                         util::PortId port, util::VlanId discovered_on) {
  if (console_ == nullptr || quarantined_.count(ip)) return;
  // Suppress the failure notifications the disablement is about to cause.
  MoveState state;
  state.target = quarantine_vlan_;
  state.deadline = sim_.after(2 * params_.move_window, [this, ip] {
    expected_moves_.erase(ip);
  });
  expected_moves_[ip] = std::move(state);
  if (!console_->set_port_vlan(sw, port, quarantine_vlan_)) {
    auto it = expected_moves_.find(ip);
    if (it != expected_moves_.end()) {
      it->second.deadline.cancel();
      expected_moves_.erase(it);
    }
    return;
  }
  quarantined_.insert(ip);

  std::ostringstream detail;
  detail << ip << " found on " << discovered_on
         << "; port disabled onto quarantine " << quarantine_vlan_;
  FarmEvent event{};
  event.kind = FarmEvent::Kind::kAdapterQuarantined;
  event.ip = ip;
  event.vlan = quarantine_vlan_;
  event.detail = detail.str();
  emit(std::move(event));
}

bool Central::release_quarantine(util::IpAddress ip) {
  if (!quarantined_.count(ip) || db_ == nullptr || console_ == nullptr)
    return false;
  const auto rec = db_->adapter_by_ip(ip);
  if (!rec) return false;
  quarantined_.erase(ip);
  return move_adapter(rec->adapter, rec->expected_vlan);
}

// --- Reconfiguration ---------------------------------------------------------------

bool Central::move_adapter(util::AdapterId adapter, util::VlanId target) {
  if (!active_ || db_ == nullptr || console_ == nullptr) return false;
  const auto rec = db_->adapter(adapter);
  if (!rec) return false;

  MoveState state;
  state.target = target;
  state.deadline = sim_.after(2 * params_.move_window, [this, ip = rec->ip] {
    // Window over: stop suppressing whatever did not materialize.
    auto it = expected_moves_.find(ip);
    if (it == expected_moves_.end()) return;
    const bool joined = it->second.seen_join;
    const util::VlanId vlan = it->second.target;
    expected_moves_.erase(it);
    FarmEvent event{};
    event.kind = joined ? FarmEvent::Kind::kMoveCompleted
                        : FarmEvent::Kind::kUnexpectedMove;
    event.ip = ip;
    event.vlan = vlan;
    event.detail = joined ? "move window closed after join"
                          : "move never completed within the window";
    emit(std::move(event));
  });
  expected_moves_[rec->ip] = std::move(state);

  db_->set_expected_vlan(adapter, target);
  if (!console_->set_port_vlan(rec->wired_switch, rec->wired_port, target)) {
    auto it = expected_moves_.find(rec->ip);
    if (it != expected_moves_.end()) {
      it->second.deadline.cancel();
      expected_moves_.erase(it);
    }
    return false;
  }

  FarmEvent event{};
  event.kind = FarmEvent::Kind::kMoveInitiated;
  event.ip = rec->ip;
  event.vlan = target;
  emit(std::move(event));
  return true;
}

bool Central::move_node(
    util::NodeId node,
    const std::vector<std::pair<util::AdapterId, util::VlanId>>&
        adapter_vlans) {
  bool ok = true;
  for (const auto& [adapter, vlan] : adapter_vlans) {
    const auto rec = db_ ? db_->adapter(adapter) : std::nullopt;
    if (!rec || rec->node != node) {
      ok = false;
      continue;
    }
    ok = move_adapter(adapter, vlan) && ok;
  }
  return ok;
}

}  // namespace gs::proto
