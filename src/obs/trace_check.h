// Online protocol-invariant checking over the trace stream.
//
// TraceInvariants subscribes to a TraceBus and cross-checks protocol records
// as they happen, catching bugs that end-state inspection cannot — a wedge
// or phantom state that the recovery machinery later papers over leaves no
// end-state evidence, but it cannot erase the trace. Checks:
//  * a 2PC Commit must be for a view the coordinator Prepared;
//  * a coordinator's committed views never go backwards;
//  * a FULL membership snapshot Central acks as a duplicate must match the
//    (seq, view) of the last report Central actually applied for that
//    leader. The daemon is stop-and-wait, so a genuine duplicate is always
//    a retry of exactly the last applied report; anything else means
//    Central discarded fresh state — the restarted-leader regressed-seq
//    wedge, invisible in the end state whenever a peer takeover happens to
//    retire the wedged record before the run finishes.
// The soak harness attaches one per run; any consumer of a TraceBus can do
// the same.
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace gs::obs {

struct TraceViolation {
  sim::SimTime time = 0;
  util::IpAddress source;
  std::string detail;
};

class TraceInvariants {
 public:
  explicit TraceInvariants(TraceBus& bus);

  TraceInvariants(const TraceInvariants&) = delete;
  TraceInvariants& operator=(const TraceInvariants&) = delete;

  [[nodiscard]] const std::vector<TraceViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::uint64_t records_checked() const {
    return records_checked_;
  }

 private:
  void on_record(const TraceRecord& record);

  struct CoordinatorState {
    std::set<std::uint64_t> prepared_views;
    std::uint64_t last_commit_view = 0;
  };
  std::map<util::IpAddress, CoordinatorState> coordinators_;
  struct AppliedReport {
    std::uint64_t seq = 0;
    std::uint64_t view = 0;
  };
  // Last report each Central applied per reporting leader. Keyed by the
  // (Central, leader) pair: a duplicate-ack is a claim about what *that*
  // Central's tables hold, so it is judged against that Central's applies.
  std::map<std::pair<util::IpAddress, util::IpAddress>, AppliedReport>
      applied_;
  std::vector<TraceViolation> violations_;
  std::uint64_t records_checked_ = 0;
  Subscription subscription_;  // last: unsubscribes before state dies
};

}  // namespace gs::obs
