// Typed, sim-timestamped trace records from every layer of the stack.
//
// Where FarmEvent is the operator-facing outcome stream (what GulfStream
// Central concluded), TraceRecord is the protocol-facing mechanism stream:
// BEACON/election/2PC phase transitions and failure-detection steps from
// AdapterProtocol and the detectors, report send/retry/ack from GsDaemon,
// correlation/verification decisions from Central, and per-segment
// wire-load samples from net::Fabric. Records flow over a TraceBus
// (obs::Bus) and cost nothing when nobody subscribed to their kind:
// emitters test wants() before even building the record.
#pragma once

#include <string>
#include <string_view>

#include "obs/bus.h"
#include "sim/time.h"
#include "util/ids.h"
#include "util/ip.h"

namespace gs::obs {

enum class TraceKind : std::uint8_t {
  // --- AdapterProtocol: discovery & election (§2.1) ------------------------
  kBeaconSent = 0,    // a=view, b=group size carried in the beacon
  kBeaconHeard,       // peer=beaconer, a=its view, b=1 if it claimed leader
  kElectionDeferred,  // peer=the higher IP deferred to
  kElectionWon,       // a=#distinct beaconers heard
  // --- AdapterProtocol: membership 2PC -------------------------------------
  kTwoPcPrepare,   // coordinator sent Prepares; a=view, b=#participants
  kTwoPcCommit,    // coordinator sent Commits;  a=view, b=final size
  kViewInstalled,  // peer=leader, a=view, b=size (every member emits one)
  kJoinRequested,  // lower leader merges upward; peer=higher leader
  // --- Failure detection (§3) ----------------------------------------------
  kHeartbeatMiss,    // detector deadline expired; peer=silent neighbor
  kSuspicionRaised,  // peer=suspect
  kSuspectSent,      // peer=suspect (report sent toward leader/successor)
  kProbeSent,        // leader verification probe; peer=suspect
  kProbeRefuted,     // suspect answered — false report; peer=suspect
  kDeathDeclared,    // peer=the member being removed
  kTakeover,         // successor assumes leadership; peer=old leader
  kReset,            // fell back to discovery (§3.1 moved-adapter path)
  // --- GsDaemon: reporting toward GSC (§2.2) -------------------------------
  kReportSent,      // peer=GSC, a=seq, b=1 if full snapshot
  kReportRetry,     // peer=GSC, a=seq
  kReportAcked,     // a=seq
  kReportNeedFull,  // GSC asked for a full snapshot; a=seq
  // --- Central -------------------------------------------------------------
  kFailureHeld,       // failure held for the move window (§3.1); peer=adapter
  kFailureCommitted,  // window expired, failure is real; peer=adapter
  kVerifyDecision,    // verification pass ran; a=#inconsistencies
  kGscReportApplied,  // report applied to the tables; peer=leader, a=seq, b=view
  kGscReportDup,      // FULL snapshot acked as duplicate; peer=leader, a=seq, b=view
  // --- net::Fabric ---------------------------------------------------------
  kWireSample,  // periodic per-VLAN load; a=frames_sent, b=bytes_sent
  // --- Causal anchors for the latency observatory (span open/close edges) --
  kFaultInjected,   // adapter health left kUp; source=adapter, a=new health
  kFaultCleared,    // adapter health returned to kUp; source=adapter, a=old
  kTwoPcAbort,      // coordinator dropped an uncommitted proposal; a=view,
                    // b=1 nacked by a higher view, b=2 leadership lost
  kNodeDown,        // Central inferred whole-node death; peer=last adapter
  kGscActivated,    // Central came up; source=its admin IP
  kGscDeactivated,  // Central went down (demoted or halted)
  kGscAdapterAlive, // Central marked a previously-dead adapter alive again
  kGscDeathUnknown, // peer=victim: death claim for an adapter this Central
                    //   never knew (post-failover / post-partition rebuild);
                    //   the claim is consumed here, so no commit will follow
  kHealthSample,    // FarmHealthSampler snapshot row; see obs/health.h
  // --- Two-level hierarchy: domain uplink -> root GSC ----------------------
  kDomainReportSent,   // peer=root, a=seq, b=1 if full digest
  kDomainReportRetry,  // peer=root, a=seq
  kDomainReportAcked,  // a=seq
  kDomainReportNeedFull,  // root asked for a full digest; a=seq
  kRootReportApplied,  // digest applied to root tables; peer=sender, a=seq,
                       //   b=domain
  kRootReportDup,      // duplicate digest acked idempotently; peer=sender
  kRootActivated,      // root GSC came up; source=its IP
  kRootDeactivated,    // root GSC went down (demoted or halted)
  kRootDomainExpired,  // a domain's lease ran out at the root; a=domain
  kDomainReportDropped,  // uplink dropped its in-flight digest because its
                         //   domain Central deactivated (demoted standby or
                         //   halting node); a=seq, b=domain

  kCount_,  // sentinel, keep last
};

static_assert(static_cast<unsigned>(TraceKind::kCount_) <= 64,
              "TraceKind must fit a 64-bit subscription mask");

enum class Severity : std::uint8_t { kDebug = 0, kInfo, kWarn, kError };

struct TraceRecord {
  TraceKind kind = TraceKind::kBeaconSent;
  Severity severity = Severity::kInfo;
  sim::SimTime time = 0;        // simulated microseconds
  util::IpAddress source;       // emitting adapter / Central
  util::IpAddress peer;         // counterparty, when there is one
  util::NodeId node;            // emitting node, when known
  util::VlanId vlan;            // segment, for wire samples
  std::uint64_t a = 0;          // kind-specific (see enum comments)
  std::uint64_t b = 0;          // kind-specific
  std::string detail;           // free-form, usually empty
};

[[nodiscard]] std::string_view to_string(TraceKind kind);
[[nodiscard]] std::string_view to_string(Severity severity);
[[nodiscard]] Severity default_severity(TraceKind kind);

// One JSON object (no trailing newline) per record; JsonlSink streams these.
[[nodiscard]] std::string to_json(const TraceRecord& record);

// Appends `s` JSON-escaped (no surrounding quotes) to `out`.
void append_json_escaped(std::string& out, std::string_view s);

using TraceBus = Bus<TraceRecord>;

// Mask helpers ---------------------------------------------------------------

[[nodiscard]] constexpr std::uint64_t trace_mask(
    std::initializer_list<TraceKind> kinds) {
  std::uint64_t mask = 0;
  for (TraceKind kind : kinds) mask |= kind_bit(kind);
  return mask;
}

// The protocol phase transitions a stabilization timeline is made of.
inline constexpr std::uint64_t kPhaseMask = trace_mask(
    {TraceKind::kBeaconSent, TraceKind::kBeaconHeard,
     TraceKind::kElectionDeferred, TraceKind::kElectionWon,
     TraceKind::kTwoPcPrepare, TraceKind::kTwoPcCommit,
     TraceKind::kViewInstalled, TraceKind::kJoinRequested});

// Everything on the failure-detection path, detector through Central.
inline constexpr std::uint64_t kFailureMask = trace_mask(
    {TraceKind::kHeartbeatMiss, TraceKind::kSuspicionRaised,
     TraceKind::kSuspectSent, TraceKind::kProbeSent, TraceKind::kProbeRefuted,
     TraceKind::kDeathDeclared, TraceKind::kTakeover, TraceKind::kReset,
     TraceKind::kFailureHeld, TraceKind::kFailureCommitted});

inline constexpr std::uint64_t kReportMask = trace_mask(
    {TraceKind::kReportSent, TraceKind::kReportRetry, TraceKind::kReportAcked,
     TraceKind::kReportNeedFull});

// Subscription predicate selecting records at or above `min` severity.
[[nodiscard]] inline TraceBus::Predicate severity_at_least(Severity min) {
  return [min](const TraceRecord& record) { return record.severity >= min; };
}

// Builds and publishes a record, gated on wants(): with no bus or no
// subscriber for `kind`, the cost is one branch (plus one AND).
void emit_trace(TraceBus* bus, TraceKind kind, sim::SimTime time,
                util::IpAddress source, util::IpAddress peer = {},
                std::uint64_t a = 0, std::uint64_t b = 0,
                std::string_view detail = {}, util::NodeId node = {},
                util::VlanId vlan = {});

}  // namespace gs::obs
