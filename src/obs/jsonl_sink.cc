#include "obs/jsonl_sink.h"

#include <cstdio>

#include "obs/expo.h"
#include "util/stats.h"

namespace gs::obs {

bool JsonlSink::open(const std::string& path) {
  close();
  error_ = false;
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) return false;
  path_ = path;
  lines_ = 0;
  return true;
}

void JsonlSink::close() {
  if (file_ != nullptr) {
    if (std::fflush(file_) != 0) set_error();
    if (std::fclose(file_) != 0) set_error();
    file_ = nullptr;
  }
  path_.clear();
}

void JsonlSink::set_error() {
  if (error_) return;  // warn once per file
  error_ = true;
  std::fprintf(stderr, "JsonlSink: write to %s failed; output is truncated\n",
               path_.empty() ? "<closed>" : path_.c_str());
}

void JsonlSink::write_line(std::string_view json) {
  if (file_ == nullptr) return;
  if (std::fwrite(json.data(), 1, json.size(), file_) != json.size() ||
      std::fputc('\n', file_) == EOF) {
    set_error();
    return;
  }
  ++lines_;
}

Subscription JsonlSink::tap(TraceBus& bus, std::uint64_t kind_mask) {
  return bus.subscribe(kind_mask, [this](const TraceRecord& record) {
    write_line(to_json(record));
  });
}

void JsonlSink::dump_stats(const util::StatsRegistry& stats) {
  for (const auto& [name, counter] : stats.counters())
    write_line(expo::counter_line(name, counter.value()));
  for (const auto& [name, gauge] : stats.gauges())
    write_line(expo::gauge_line(name, gauge.value()));
  for (const auto& [name, histogram] : stats.histograms())
    write_line(expo::histogram_line(name, histogram));
}

}  // namespace gs::obs
