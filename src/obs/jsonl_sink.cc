#include "obs/jsonl_sink.h"

#include <cstdio>

#include "util/stats.h"

namespace gs::obs {

bool JsonlSink::open(const std::string& path) {
  close();
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) return false;
  path_ = path;
  lines_ = 0;
  return true;
}

void JsonlSink::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  path_.clear();
}

void JsonlSink::write_line(std::string_view json) {
  if (file_ == nullptr) return;
  std::fwrite(json.data(), 1, json.size(), file_);
  std::fputc('\n', file_);
  ++lines_;
}

Subscription JsonlSink::tap(TraceBus& bus, std::uint64_t kind_mask) {
  return bus.subscribe(kind_mask, [this](const TraceRecord& record) {
    write_line(to_json(record));
  });
}

void JsonlSink::dump_stats(const util::StatsRegistry& stats) {
  std::string line;
  for (const auto& [name, counter] : stats.counters()) {
    line = "{\"type\":\"counter\",\"name\":\"";
    append_json_escaped(line, name);
    line += "\",\"value\":";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(counter.value()));
    line += buf;
    line += '}';
    write_line(line);
  }
  for (const auto& [name, histogram] : stats.histograms()) {
    line = "{\"type\":\"histogram\",\"name\":\"";
    append_json_escaped(line, name);
    line += '"';
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  ",\"count\":%llu,\"min\":%lld,\"max\":%lld,\"mean\":%.3f,"
                  "\"stddev\":%.3f,\"p50\":%lld,\"p99\":%lld}",
                  static_cast<unsigned long long>(histogram.count()),
                  static_cast<long long>(histogram.min()),
                  static_cast<long long>(histogram.max()), histogram.mean(),
                  histogram.stddev(), static_cast<long long>(histogram.p50()),
                  static_cast<long long>(histogram.p99()));
    line += buf;
    write_line(line);
  }
}

}  // namespace gs::obs
