// Causal span correlation over the trace bus — the latency observatory.
//
// The paper's headline numbers are latencies: Eq. 1's stabilization terms,
// §3's detection time delta, and the report-propagation delay up to
// GulfStream Central. SpanTracker turns the raw TraceRecord stream into
// those quantities directly: it pairs each causally-linked open/close
// record couple into a named latency histogram, and — because a span that
// silently never closes is a lie — every way a span can fail to close is
// accounted under an explicit AbandonCause, so `opened == closed +
// abandoned + open` holds at all times and the soak harness can assert no
// span leaks across a whole randomized fault schedule.
//
// Span taxonomy (see DESIGN.md "Latency observatory" for the full table):
//   detection   kFaultInjected(ip)     -> kFailureCommitted(ip) at Central
//   view_change kTwoPcPrepare(C,view)  -> kViewInstalled(C,view) as leader
//   join        first kBeaconSent(ip)  -> kViewInstalled(ip) while uninstalled
//   report      kReportSent(L,seq)     -> kGscReportApplied(L,seq)
//   failover    kGscDeactivated(G)     -> first kGscReportApplied afterward
// Two derived histograms ride along without open-span accounting:
//   span.detection_leader_us  kFaultInjected -> kDeathDeclared/kTakeover
//                             (the leader-side Eq. 1 delta, what
//                             bench/detection_tradeoff's model predicts)
//   span.node_detection_us    first adapter fault of a node -> kNodeDown
//
// The tracker is an ordinary bus subscriber: when it is not attached the
// new trace kinds stay unsubscribed and emitters pay one branch, preserving
// PR 1's "unobserved records cost nothing" contract. Attach it before
// injecting faults or the books will not balance.
#pragma once

#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "sim/time.h"
#include "util/ids.h"
#include "util/ip.h"
#include "util/stats.h"

namespace gs::obs {

enum class SpanKind : std::uint8_t {
  kDetection = 0,  // adapter fault to Central committing the failure
  kViewChange,     // 2PC Prepare to the coordinator installing the view
  kJoin,           // first beacon of an uninstalled adapter to its install
  kReport,         // leader delta/snapshot sent to Central applying it
  kFailover,       // GSC down to the successor's first applied report
  kDomainReport,   // domain digest sent to the root Central applying it
  kCount_,
};

enum class AbandonCause : std::uint8_t {
  kRecovered = 0,  // fault cleared before the farm finished reacting
  kAlreadyDead,    // Central already recorded the victim dead; no new fact
  kGscFailover,    // Central's tables reset; the close can no longer happen
  kDied,           // the adapter carrying the span went down
  kAborted2Pc,     // coordinator dropped the proposal (nacked by higher view)
  kDemoted,        // coordinator/leader lost leadership mid-span
  kSuperseded,     // replaced by a newer span for the same key
  kDuplicate,      // report acked as duplicate instead of applied
  kNeedFull,       // report rejected, full snapshot requested
  kReset,          // the protocol fell back to discovery mid-span
  kUnknownToGsc,   // death claim consumed by a Central that never knew the
                   //   victim (kGscDeathUnknown); no commit can follow
  kCount_,
};

[[nodiscard]] std::string_view to_string(SpanKind kind);
[[nodiscard]] std::string_view to_string(AbandonCause cause);

class SpanTracker {
 public:
  // Latencies and outcome counters land in `registry` (histograms named
  // span.<kind>_us, counters span.<kind>.{opened,closed,abandoned.<cause>,
  // unmatched_close}); when null the tracker owns a private registry,
  // reachable through stats().
  explicit SpanTracker(TraceBus& bus, util::StatsRegistry* registry = nullptr);

  struct OpenSpan {
    SpanKind kind = SpanKind::kDetection;
    util::IpAddress key;  // victim / coordinator / joiner / leader / old GSC
    sim::SimTime opened_at = 0;
  };

  [[nodiscard]] std::vector<OpenSpan> open_spans() const;
  [[nodiscard]] std::uint64_t open_count(SpanKind kind) const;
  [[nodiscard]] std::uint64_t open_total() const;
  // High-water mark of concurrently open spans (all kinds).
  [[nodiscard]] std::uint64_t open_watermark() const { return watermark_; }

  [[nodiscard]] std::uint64_t opened(SpanKind kind) const;
  [[nodiscard]] std::uint64_t closed(SpanKind kind) const;
  [[nodiscard]] std::uint64_t abandoned(SpanKind kind) const;
  [[nodiscard]] std::uint64_t abandoned(SpanKind kind,
                                        AbandonCause cause) const;
  // Closes with no matching open span (e.g. a failure Central commits for a
  // switch-severed but healthy adapter). Counted, never recorded as latency.
  [[nodiscard]] std::uint64_t unmatched_closes(SpanKind kind) const;

  [[nodiscard]] const util::StatsRegistry& stats() const { return *registry_; }
  [[nodiscard]] util::StatsRegistry& stats() { return *registry_; }

  [[nodiscard]] static std::string_view histogram_name(SpanKind kind);

 private:
  struct Target {
    bool faulted = false;         // health currently != kUp
    bool installed = false;       // has emitted kViewInstalled since reset
    bool central_dead = false;    // Central's last committed verdict
    bool leader_declared = false; // leader-side death seen for open fault
    sim::SimTime fault_at = -1;   // open detection span, -1 if none
    sim::SimTime join_open = -1;  // open join span, -1 if none
  };
  struct OpenKeyed {
    std::uint64_t id = 0;  // view (proposals) or seq (reports)
    sim::SimTime opened_at = 0;
  };
  struct NodeFaults {
    std::uint64_t down = 0;         // adapters currently faulted
    sim::SimTime first_fault = 0;   // when the first of them went down
    bool declared = false;          // Central already inferred node death
  };

  void on_record(const TraceRecord& record);
  void open(SpanKind kind);
  void close(SpanKind kind, sim::SimTime opened_at, sim::SimTime now);
  void abandon(SpanKind kind, AbandonCause cause);
  void unmatched(SpanKind kind);
  util::Counter& span_counter(SpanKind kind, std::string_view outcome);

  util::StatsRegistry own_registry_;
  util::StatsRegistry* registry_;

  std::map<util::IpAddress, Target> targets_;
  std::map<util::NodeId, NodeFaults> node_faults_;
  std::map<util::IpAddress, OpenKeyed> open_proposals_;
  std::map<util::IpAddress, OpenKeyed> open_reports_;
  std::map<util::IpAddress, OpenKeyed> open_domain_reports_;
  bool failover_open_ = false;
  sim::SimTime failover_opened_at_ = 0;
  util::IpAddress failed_gsc_;
  util::IpAddress active_gsc_;

  std::uint64_t opened_[static_cast<std::size_t>(SpanKind::kCount_)] = {};
  std::uint64_t closed_[static_cast<std::size_t>(SpanKind::kCount_)] = {};
  std::uint64_t unmatched_[static_cast<std::size_t>(SpanKind::kCount_)] = {};
  std::uint64_t open_now_[static_cast<std::size_t>(SpanKind::kCount_)] = {};
  std::uint64_t abandoned_[static_cast<std::size_t>(SpanKind::kCount_)]
                          [static_cast<std::size_t>(AbandonCause::kCount_)] =
                              {};
  std::uint64_t watermark_ = 0;

  Subscription subscription_;
};

}  // namespace gs::obs
