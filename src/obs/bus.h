// Multi-subscriber event/trace bus.
//
// Bus<Record> generalizes the old single-std::function callback: any number
// of subscribers, each with a per-kind bit-mask filter (and optionally an
// arbitrary predicate, e.g. to select one source), each holding an RAII
// Subscription that unsubscribes on destruction. Design constraints, in
// order:
//  * negligible cost with no subscriber: publish() tests the record's kind
//    bit against the OR of every subscriber's mask — one load, one AND —
//    before anything else happens; emitters gate record *construction* on
//    wants() so an unobserved record costs nothing at all;
//  * dangling-safety: a Subscription holds a weak_ptr to the bus state, so
//    either side may die first in any order;
//  * reentrancy: a callback may subscribe or unsubscribe (including itself)
//    mid-publish; removal is deferred until the publish loop unwinds.
//
// Not thread-safe by design: buses live inside one deterministic
// simulation, like everything else in this repository.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace gs::obs {

// Mask accepting every kind.
inline constexpr std::uint64_t kAllKinds = ~std::uint64_t{0};

// One bit per enum value. Record kind enums stay under 64 entries by
// design; a static_assert at each enum's definition site enforces it.
template <typename Kind>
[[nodiscard]] constexpr std::uint64_t kind_bit(Kind kind) {
  return std::uint64_t{1} << static_cast<unsigned>(kind);
}

namespace internal {
class SubscriberSet {
 public:
  virtual ~SubscriberSet() = default;
  virtual void unsubscribe(std::uint64_t id) = 0;
};
}  // namespace internal

// RAII unsubscribe token. Movable, not copyable; default-constructed means
// "not subscribed". Outliving the bus is fine: reset() becomes a no-op.
class Subscription {
 public:
  Subscription() = default;
  Subscription(std::weak_ptr<internal::SubscriberSet> owner, std::uint64_t id)
      : owner_(std::move(owner)), id_(id) {}

  Subscription(const Subscription&) = delete;
  Subscription& operator=(const Subscription&) = delete;

  Subscription(Subscription&& other) noexcept
      : owner_(std::move(other.owner_)), id_(other.id_) {
    other.owner_.reset();
  }
  Subscription& operator=(Subscription&& other) noexcept {
    if (this != &other) {
      reset();
      owner_ = std::move(other.owner_);
      id_ = other.id_;
      other.owner_.reset();
    }
    return *this;
  }

  ~Subscription() { reset(); }

  // Unsubscribes immediately (safe if the bus died first).
  void reset() {
    if (auto owner = owner_.lock()) owner->unsubscribe(id_);
    owner_.reset();
  }

  // True while the subscription is live on a live bus.
  [[nodiscard]] bool active() const { return !owner_.expired(); }

 private:
  std::weak_ptr<internal::SubscriberSet> owner_;
  std::uint64_t id_ = 0;
};

// Record must expose a `kind` member of an enum type with < 64 values.
template <typename Record>
class Bus {
 public:
  using Callback = std::function<void(const Record&)>;
  using Predicate = std::function<bool(const Record&)>;

  Bus() : state_(std::make_shared<State>()) {}

  Bus(const Bus&) = delete;
  Bus& operator=(const Bus&) = delete;

  [[nodiscard]] Subscription subscribe(Callback callback) {
    return subscribe(kAllKinds, Predicate(), std::move(callback));
  }

  [[nodiscard]] Subscription subscribe(std::uint64_t kind_mask,
                                       Callback callback) {
    return subscribe(kind_mask, Predicate(), std::move(callback));
  }

  // Full form: the callback fires for records whose kind bit is in
  // `kind_mask` AND that satisfy `predicate` (when given) — the predicate
  // carries filters a bit-mask cannot, e.g. "only from this source".
  [[nodiscard]] Subscription subscribe(std::uint64_t kind_mask,
                                       Predicate predicate,
                                       Callback callback) {
    State& state = *state_;
    Entry entry;
    entry.id = state.next_id++;
    entry.mask = kind_mask;
    entry.predicate = std::move(predicate);
    entry.callback = std::move(callback);
    const std::uint64_t id = entry.id;
    state.entries.push_back(std::move(entry));
    state.combined_mask |= kind_mask;
    return Subscription(state_, id);
  }

  // Does any subscriber want this kind bit? One load and one AND — the
  // entire cost of an unobserved publish. Emitters should gate record
  // construction on this.
  [[nodiscard]] bool wants(std::uint64_t bit) const {
    return (state_->combined_mask & bit) != 0;
  }
  template <typename Kind>
  [[nodiscard]] bool wants_kind(Kind kind) const {
    return wants(kind_bit(kind));
  }

  [[nodiscard]] std::size_t subscriber_count() const {
    std::size_t n = 0;
    for (const Entry& entry : state_->entries)
      if (!entry.dead) ++n;
    return n;
  }
  [[nodiscard]] bool has_subscribers() const {
    return subscriber_count() > 0;
  }

  void publish(const Record& record) const {
    State& state = *state_;
    const std::uint64_t bit = kind_bit(record.kind);
    if ((state.combined_mask & bit) == 0) return;
    ++state.publish_depth;
    // Index loop over the pre-publish size: callbacks may subscribe
    // (growing the vector — new subscribers see only later records) or
    // unsubscribe (flagging entries dead) while we iterate.
    const std::size_t n = state.entries.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (state.entries[i].dead || (state.entries[i].mask & bit) == 0)
        continue;
      if (state.entries[i].predicate && !state.entries[i].predicate(record))
        continue;
      // Copy the callback: a subscribe() inside it may reallocate entries.
      Callback callback = state.entries[i].callback;
      callback(record);
    }
    if (--state.publish_depth == 0 && state.has_dead) state.sweep();
  }

 private:
  struct Entry {
    std::uint64_t id = 0;
    std::uint64_t mask = 0;
    Predicate predicate;
    Callback callback;
    bool dead = false;
  };

  struct State final : internal::SubscriberSet {
    std::vector<Entry> entries;
    std::uint64_t combined_mask = 0;
    std::uint64_t next_id = 1;
    int publish_depth = 0;
    bool has_dead = false;

    void unsubscribe(std::uint64_t id) override {
      for (Entry& entry : entries) {
        if (entry.id != id) continue;
        entry.dead = true;
        if (publish_depth > 0)
          has_dead = true;  // erased once the publish loop unwinds
        break;
      }
      if (publish_depth == 0) sweep();
    }

    void sweep() {
      std::erase_if(entries, [](const Entry& entry) { return entry.dead; });
      has_dead = false;
      combined_mask = 0;
      for (const Entry& entry : entries) combined_mask |= entry.mask;
    }
  };

  std::shared_ptr<State> state_;
};

// Accumulates every record its subscription admits, in publish order — the
// migration target for consumers of the old hand-wired chronological log.
// Pin it in place after attach(): the subscription captures `this`.
template <typename Record>
class Recorder {
 public:
  Recorder() = default;
  explicit Recorder(Bus<Record>& bus, std::uint64_t kind_mask = kAllKinds) {
    attach(bus, kind_mask);
  }

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // (Re)subscribes to `bus`, dropping any previous subscription. Already
  // accumulated records are kept; clear() separately if starting over.
  void attach(Bus<Record>& bus, std::uint64_t kind_mask = kAllKinds) {
    subscription_ = bus.subscribe(kind_mask, [this](const Record& record) {
      records_.push_back(record);
    });
  }
  void detach() { subscription_.reset(); }
  [[nodiscard]] bool attached() const { return subscription_.active(); }

  [[nodiscard]] const std::vector<Record>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  [[nodiscard]] auto begin() const { return records_.begin(); }
  [[nodiscard]] auto end() const { return records_.end(); }

  template <typename Kind>
  [[nodiscard]] std::size_t count(Kind kind) const {
    std::size_t n = 0;
    for (const Record& record : records_)
      if (record.kind == kind) ++n;
    return n;
  }

  void clear() { records_.clear(); }

 private:
  std::vector<Record> records_;
  Subscription subscription_;
};

}  // namespace gs::obs
