#include "obs/health.h"

#include <algorithm>
#include <string>

namespace gs::obs {

FarmHealthSampler::FarmHealthSampler(sim::TimeSource& sim, TraceBus& bus,
                                     Provider provider,
                                     sim::SimDuration period,
                                     util::StatsRegistry* registry)
    : sim_(sim),
      bus_(bus),
      provider_(std::move(provider)),
      period_(std::max<sim::SimDuration>(period, sim::kMillisecond)),
      registry_(registry) {
  timer_ = sim_.after(period_, [this] { tick(); });
}

void FarmHealthSampler::tick() {
  sample_now();
  timer_ = sim_.after(period_, [this] { tick(); });
}

void FarmHealthSampler::sample_now() {
  const Snapshot snapshot = provider_();
  ++samples_;
  publish(snapshot);
}

void FarmHealthSampler::publish(const Snapshot& snapshot) {
  const sim::SimTime now = sim_.now();
  const bool trace = bus_.wants_kind(TraceKind::kHealthSample);

  std::uint64_t max_view_age = 0;
  std::uint64_t min_size = 0, max_size = 0;
  for (const AmgSample& amg : snapshot.amgs) {
    const auto age =
        static_cast<std::uint64_t>(std::max<sim::SimTime>(
            now - amg.committed_at, 0));
    max_view_age = std::max(max_view_age, age);
    min_size = min_size == 0 ? amg.size : std::min(min_size, amg.size);
    max_size = std::max(max_size, amg.size);
    if (trace)
      emit_trace(&bus_, TraceKind::kHealthSample, now, amg.leader, {}, age,
                 amg.size, "amg", {}, amg.vlan);
  }
  if (snapshot.gsc) {
    const GscSample& gsc = *snapshot.gsc;
    if (trace) {
      emit_trace(&bus_, TraceKind::kHealthSample, now, gsc.gsc, {},
                 gsc.groups, gsc.adapters, "gsc.tables");
      emit_trace(&bus_, TraceKind::kHealthSample, now, gsc.gsc, {}, gsc.alive,
                 gsc.nodes_down, "gsc.alive");
    }
  }
  if (snapshot.root && trace) {
    const RootSample& root = *snapshot.root;
    emit_trace(&bus_, TraceKind::kHealthSample, now, root.root, {},
               root.domains, root.adapters, "gsc.domain.tables");
    emit_trace(&bus_, TraceKind::kHealthSample, now, root.root, {}, root.alive,
               root.need_fulls, "gsc.domain.alive");
  }
  for (const WireSample& wire : snapshot.wire) {
    if (trace)
      emit_trace(&bus_, TraceKind::kHealthSample, now, {}, {},
                 wire.frames_sent, wire.bytes_sent, "wire", {}, wire.vlan);
  }
  if (snapshot.spans && trace) {
    emit_trace(&bus_, TraceKind::kHealthSample, now, {}, {},
               snapshot.spans->open, snapshot.spans->watermark, "spans.open");
    emit_trace(&bus_, TraceKind::kHealthSample, now, {}, {},
               snapshot.spans->closed, snapshot.spans->abandoned,
               "spans.done");
  }
  if (snapshot.codec && trace) {
    std::uint64_t decoded = 0, dropped = 0;
    for (const auto& [label, count] : snapshot.codec->decoded) decoded += count;
    for (const auto& [label, count] : snapshot.codec->dropped) dropped += count;
    emit_trace(&bus_, TraceKind::kHealthSample, now, {}, {}, decoded, dropped,
               "codec");
  }

  if (registry_ == nullptr) return;
  registry_->counter("health.samples").add();
  registry_->gauge("farm.amg.count")
      .set(static_cast<double>(snapshot.amgs.size()));
  registry_->gauge("farm.amg.max_view_age_us")
      .set(static_cast<double>(max_view_age));
  registry_->gauge("farm.amg.min_size").set(static_cast<double>(min_size));
  registry_->gauge("farm.amg.max_size").set(static_cast<double>(max_size));
  if (snapshot.gsc) {
    const GscSample& gsc = *snapshot.gsc;
    registry_->gauge("gsc.groups").set(static_cast<double>(gsc.groups));
    registry_->gauge("gsc.adapters").set(static_cast<double>(gsc.adapters));
    registry_->gauge("gsc.adapters_alive")
        .set(static_cast<double>(gsc.alive));
    registry_->gauge("gsc.nodes_down")
        .set(static_cast<double>(gsc.nodes_down));
  }
  if (snapshot.root) {
    const RootSample& root = *snapshot.root;
    registry_->gauge("gsc.domain.count")
        .set(static_cast<double>(root.domains));
    registry_->gauge("gsc.domain.adapters")
        .set(static_cast<double>(root.adapters));
    registry_->gauge("gsc.domain.adapters_alive")
        .set(static_cast<double>(root.alive));
    registry_->gauge("gsc.domain.reports")
        .set(static_cast<double>(root.reports));
    registry_->gauge("gsc.domain.need_fulls")
        .set(static_cast<double>(root.need_fulls));
  }
  for (const AmgSample& amg : snapshot.amgs) {
    if (!amg.vlan.valid()) continue;
    const std::string vlan = std::to_string(amg.vlan.value());
    registry_->gauge(util::labeled("amg.view", {{"vlan", vlan}}))
        .set(static_cast<double>(amg.view));
    // Membership fingerprint: equal digests across samples mean the group
    // composition is stable even when the view number churns.
    registry_->gauge(util::labeled("amg.digest", {{"vlan", vlan}}))
        .set(static_cast<double>(amg.digest));
  }
  for (const WireSample& wire : snapshot.wire) {
    const std::string vlan = std::to_string(wire.vlan.value());
    registry_->gauge(util::labeled("wire.frames_sent", {{"vlan", vlan}}))
        .set(static_cast<double>(wire.frames_sent));
    registry_->gauge(util::labeled("wire.bytes_sent", {{"vlan", vlan}}))
        .set(static_cast<double>(wire.bytes_sent));
  }
  if (snapshot.spans) {
    registry_->gauge("spans.open")
        .set(static_cast<double>(snapshot.spans->open));
    registry_->gauge("spans.open_watermark")
        .set(static_cast<double>(snapshot.spans->watermark));
  }
  if (snapshot.queue) {
    registry_->gauge("sim.queue.live")
        .set(static_cast<double>(snapshot.queue->live));
    registry_->gauge("sim.queue.slots")
        .set(static_cast<double>(snapshot.queue->slots));
    registry_->gauge("sim.queue.high_water")
        .set(static_cast<double>(snapshot.queue->high_water));
  }
  if (snapshot.codec) {
    for (const auto& [type, count] : snapshot.codec->decoded)
      registry_->gauge(util::labeled("wire.decoded", {{"type", type}}))
          .set(static_cast<double>(count));
    for (const auto& [reason, count] : snapshot.codec->dropped)
      registry_->gauge(util::labeled("wire.dropped", {{"reason", reason}}))
          .set(static_cast<double>(count));
  }
}

}  // namespace gs::obs
