// Periodic farm-health snapshots onto the trace bus and into gauges.
//
// A sim-timer driven sampler that asks its embedder (farm::Farm wires the
// provider; obs cannot see farm types) for a Snapshot every `period` and
// publishes it two ways:
//   - kHealthSample trace records, one row per fact (schema below), so a
//     JsonlSink tap yields a time series alongside the protocol trace;
//   - util::Gauge series in a StatsRegistry, so the exposition module
//     (obs/expo.h) can render current values as Prometheus/JSON.
//
// kHealthSample row schema (detail discriminates the row type):
//   detail="amg"         source=leader, vlan, a=view age in us, b=group size
//   detail="gsc.tables"  source=GSC,  a=#groups, b=#known adapters
//   detail="gsc.alive"   source=GSC,  a=#adapters alive, b=#nodes down
//   detail="gsc.domain.tables" source=root GSC, a=#domains, b=#known adapters
//   detail="gsc.domain.alive"  source=root GSC, a=#adapters alive,
//                        b=need_full acks sent
//   detail="wire"        vlan, a=frames sent, b=bytes sent (cumulative)
//   detail="spans.open"  a=open spans now, b=open-span high-water mark
//   detail="spans.done"  a=spans closed, b=spans abandoned (cumulative)
//   detail="codec"       a=frames decoded, b=frames dropped (cumulative,
//                        summed over all daemons and types/reasons)
//
// Trace rows are gated on wants(kHealthSample): with nobody subscribed the
// sampler only refreshes gauges. With no sampler constructed at all, the
// kind is never emitted — the zero-cost contract is untouched.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "sim/time_source.h"
#include "sim/time.h"
#include "util/ids.h"
#include "util/ip.h"
#include "util/stats.h"

namespace gs::obs {

class FarmHealthSampler {
 public:
  struct AmgSample {
    util::IpAddress leader;
    util::VlanId vlan;
    std::uint64_t view = 0;
    std::uint64_t size = 0;
    sim::SimTime committed_at = 0;  // when this view was installed
    std::uint64_t digest = 0;       // membership fingerprint (Amg ips_hash)
  };
  struct GscSample {
    util::IpAddress gsc;
    std::uint64_t groups = 0;
    std::uint64_t adapters = 0;
    std::uint64_t alive = 0;
    std::uint64_t nodes_down = 0;
  };
  // Root tier of a hierarchical farm (gs/central_hier.h): the RootCentral's
  // aggregated view, published as gsc.domain.* gauges.
  struct RootSample {
    util::IpAddress root;
    std::uint64_t domains = 0;
    std::uint64_t adapters = 0;
    std::uint64_t alive = 0;
    std::uint64_t reports = 0;     // DomainReports applied (cumulative)
    std::uint64_t need_fulls = 0;  // need_full acks sent (cumulative)
  };
  struct WireSample {
    util::VlanId vlan;
    std::uint64_t frames_sent = 0;
    std::uint64_t bytes_sent = 0;
  };
  struct SpanSample {
    std::uint64_t open = 0;
    std::uint64_t watermark = 0;
    std::uint64_t closed = 0;
    std::uint64_t abandoned = 0;
  };
  // Event-queue occupancy of the embedder's simulator (timing-wheel stats):
  // live scheduled events, allocated callback slots (live + free-listed),
  // and the all-time live high-water mark. Gauges only — no trace row, so
  // enabling it leaves jsonl traces untouched.
  struct QueueSample {
    std::uint64_t live = 0;
    std::uint64_t slots = 0;
    std::uint64_t high_water = 0;
  };
  // Farm-wide codec accounting (obs cannot see proto::WireStats, so the
  // embedder pre-labels each counter): frames decoded per message type and
  // frames dropped per reason, aggregated over every daemon. Only nonzero
  // counters need be present.
  struct CodecSample {
    std::vector<std::pair<std::string, std::uint64_t>> decoded;  // by type
    std::vector<std::pair<std::string, std::uint64_t>> dropped;  // by reason
  };
  struct Snapshot {
    std::vector<AmgSample> amgs;
    std::optional<GscSample> gsc;
    std::optional<RootSample> root;
    std::vector<WireSample> wire;
    std::optional<SpanSample> spans;
    std::optional<CodecSample> codec;
    std::optional<QueueSample> queue;
  };
  using Provider = std::function<Snapshot()>;

  // Starts sampling immediately; first tick fires one `period` from now.
  // `registry` may be null (trace rows only).
  FarmHealthSampler(sim::TimeSource& sim, TraceBus& bus, Provider provider,
                    sim::SimDuration period,
                    util::StatsRegistry* registry = nullptr);

  [[nodiscard]] std::uint64_t samples_taken() const { return samples_; }
  [[nodiscard]] sim::SimDuration period() const { return period_; }

  // Takes one sample now, outside the periodic schedule (benches call this
  // right before dumping metrics so gauges reflect the final state).
  void sample_now();

 private:
  void tick();
  void publish(const Snapshot& snapshot);

  sim::TimeSource& sim_;
  TraceBus& bus_;
  Provider provider_;
  sim::SimDuration period_;
  util::StatsRegistry* registry_;
  std::uint64_t samples_ = 0;
  sim::Timer timer_;
};

}  // namespace gs::obs
