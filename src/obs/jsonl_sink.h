// JSON Lines output: one JSON object per line, streaming.
//
// The sink writes trace records as they are published (tap a TraceBus) and
// dumps a StatsRegistry's final counters/histograms, so a bench run leaves
// behind one machine-readable file carrying both the timeline and the
// aggregates. Not thread-safe — benches write JSONL from the main thread
// after their parallel trial phase, and trace runs are single-simulation.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "obs/trace.h"

namespace gs::util {
class StatsRegistry;
}  // namespace gs::util

namespace gs::obs {

class JsonlSink {
 public:
  JsonlSink() = default;
  explicit JsonlSink(const std::string& path) { open(path); }

  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  ~JsonlSink() { close(); }

  // Opens (truncating) `path` for writing. Returns false on failure.
  // Clears any sticky write error from a previous file.
  bool open(const std::string& path);
  // Flushes and closes. Flush/close failures latch the error flag, so a
  // full disk discovered only at buffer drain still shows up in ok().
  void close();
  [[nodiscard]] bool is_open() const { return file_ != nullptr; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t lines_written() const { return lines_; }
  // False once any write/flush/close failed; sticky until the next open().
  // The first failure warns once on stderr.
  [[nodiscard]] bool ok() const { return !error_; }

  // Writes one line; `json` must be a complete JSON value without newline.
  void write_line(std::string_view json);

  // Subscribes this sink to `bus`: every admitted record is streamed as one
  // JSON line. Keep the returned Subscription alive (and the sink pinned in
  // place) for as long as records should flow.
  [[nodiscard]] Subscription tap(TraceBus& bus,
                                 std::uint64_t kind_mask = kAllKinds);

  // One {"type":"counter"|"gauge"|"histogram",...} line per registered
  // stat (rendered by obs/expo.h so the fields match the standalone JSON
  // exposition).
  void dump_stats(const util::StatsRegistry& stats);

 private:
  void set_error();

  std::FILE* file_ = nullptr;
  std::string path_;
  std::uint64_t lines_ = 0;
  bool error_ = false;
};

}  // namespace gs::obs
