// Metrics exposition: StatsRegistry -> Prometheus text format / JSON.
//
// Registry names use dotted.paths, optionally with an inline label block
// built by util::labeled() (`wire.frames_sent{vlan="12"}`). Prometheus
// output sanitizes the base name (dots become underscores, a `gs_` prefix
// namespaces the farm) and re-emits the label block verbatim; histograms
// render as summaries (quantile series + _sum/_count). JSON keeps the
// composite registry keys untouched:
//   {"counters":{...},"gauges":{...},"histograms":{"name":{"count":...}}}
//
// JsonlSink::dump_stats uses the per-line helpers so a trace file's stats
// tail and the standalone JSON document stay field-for-field identical.
#pragma once

#include <string>
#include <string_view>

#include "util/stats.h"

namespace gs::obs::expo {

// Prometheus text exposition format 0.0.4 (# TYPE comments + samples),
// ending in a trailing newline.
[[nodiscard]] std::string to_prometheus(const util::StatsRegistry& registry);

// One structured JSON object (no trailing newline).
[[nodiscard]] std::string to_json(const util::StatsRegistry& registry);

// Single-line JSON objects for JSONL embedding (no trailing newline).
[[nodiscard]] std::string counter_line(std::string_view name,
                                       std::uint64_t value);
[[nodiscard]] std::string gauge_line(std::string_view name, double value);
[[nodiscard]] std::string histogram_line(std::string_view name,
                                         const util::Histogram& histogram);

// Writes to_prometheus(registry) to `path` and to_json(registry) to
// `path` + ".json". Returns false (after a one-line stderr warning) if
// either file cannot be written completely.
bool write_metrics_files(const util::StatsRegistry& registry,
                         const std::string& path);

}  // namespace gs::obs::expo
