#include "obs/shard_merge.h"

#include <algorithm>

namespace gs::obs {

std::vector<ShardTraceRecord> merge_shard_traces(
    const std::vector<std::vector<TraceRecord>>& per_shard) {
  std::vector<ShardTraceRecord> merged;
  std::size_t total = 0;
  for (const auto& stream : per_shard) total += stream.size();
  merged.reserve(total);
  for (std::size_t shard = 0; shard < per_shard.size(); ++shard) {
    for (std::size_t i = 0; i < per_shard[shard].size(); ++i)
      merged.push_back({shard, i, per_shard[shard][i]});
  }
  std::sort(merged.begin(), merged.end(),
            [](const ShardTraceRecord& x, const ShardTraceRecord& y) {
              if (x.record.time != y.record.time)
                return x.record.time < y.record.time;
              if (x.shard != y.shard) return x.shard < y.shard;
              return x.seq < y.seq;
            });
  return merged;
}

std::string shard_trace_jsonl(const std::vector<ShardTraceRecord>& merged) {
  std::string out;
  for (const ShardTraceRecord& r : merged) {
    out += to_json(r.record);
    out += '\n';
  }
  return out;
}

std::uint64_t shard_trace_digest(const std::vector<ShardTraceRecord>& merged) {
  const std::string jsonl = shard_trace_jsonl(merged);
  std::uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a
  for (const char c : jsonl) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace gs::obs
