// Forward declarations for the telemetry layer, so low-level headers
// (proto::Params, net::Fabric) can carry a TraceBus* without pulling in the
// full obs headers.
#pragma once

#include <cstdint>

namespace gs::obs {

template <typename Record>
class Bus;

enum class TraceKind : std::uint8_t;
enum class Severity : std::uint8_t;
struct TraceRecord;

using TraceBus = Bus<TraceRecord>;

}  // namespace gs::obs
