#include "obs/trace.h"

#include <cstdio>

namespace gs::obs {

std::string_view to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kBeaconSent: return "beacon-sent";
    case TraceKind::kBeaconHeard: return "beacon-heard";
    case TraceKind::kElectionDeferred: return "election-deferred";
    case TraceKind::kElectionWon: return "election-won";
    case TraceKind::kTwoPcPrepare: return "2pc-prepare";
    case TraceKind::kTwoPcCommit: return "2pc-commit";
    case TraceKind::kViewInstalled: return "view-installed";
    case TraceKind::kJoinRequested: return "join-requested";
    case TraceKind::kHeartbeatMiss: return "heartbeat-miss";
    case TraceKind::kSuspicionRaised: return "suspicion-raised";
    case TraceKind::kSuspectSent: return "suspect-sent";
    case TraceKind::kProbeSent: return "probe-sent";
    case TraceKind::kProbeRefuted: return "probe-refuted";
    case TraceKind::kDeathDeclared: return "death-declared";
    case TraceKind::kTakeover: return "takeover";
    case TraceKind::kReset: return "reset";
    case TraceKind::kReportSent: return "report-sent";
    case TraceKind::kReportRetry: return "report-retry";
    case TraceKind::kReportAcked: return "report-acked";
    case TraceKind::kReportNeedFull: return "report-need-full";
    case TraceKind::kFailureHeld: return "failure-held";
    case TraceKind::kFailureCommitted: return "failure-committed";
    case TraceKind::kVerifyDecision: return "verify-decision";
    case TraceKind::kGscReportApplied: return "gsc-report-applied";
    case TraceKind::kGscReportDup: return "gsc-report-dup";
    case TraceKind::kWireSample: return "wire-sample";
    case TraceKind::kFaultInjected: return "fault-injected";
    case TraceKind::kFaultCleared: return "fault-cleared";
    case TraceKind::kTwoPcAbort: return "2pc-abort";
    case TraceKind::kNodeDown: return "node-down";
    case TraceKind::kGscActivated: return "gsc-activated";
    case TraceKind::kGscDeactivated: return "gsc-deactivated";
    case TraceKind::kGscAdapterAlive: return "gsc-adapter-alive";
    case TraceKind::kGscDeathUnknown: return "gsc-death-unknown";
    case TraceKind::kHealthSample: return "health-sample";
    case TraceKind::kDomainReportSent: return "domain-report-sent";
    case TraceKind::kDomainReportRetry: return "domain-report-retry";
    case TraceKind::kDomainReportAcked: return "domain-report-acked";
    case TraceKind::kDomainReportNeedFull: return "domain-report-need-full";
    case TraceKind::kRootReportApplied: return "root-report-applied";
    case TraceKind::kRootReportDup: return "root-report-dup";
    case TraceKind::kRootActivated: return "root-activated";
    case TraceKind::kRootDeactivated: return "root-deactivated";
    case TraceKind::kRootDomainExpired: return "root-domain-expired";
    case TraceKind::kDomainReportDropped: return "domain-report-dropped";
    case TraceKind::kCount_: break;
  }
  return "?";
}

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::kDebug: return "debug";
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "?";
}

Severity default_severity(TraceKind kind) {
  switch (kind) {
    case TraceKind::kBeaconSent:
    case TraceKind::kBeaconHeard:
    case TraceKind::kWireSample:
    case TraceKind::kGscReportApplied:
    case TraceKind::kRootReportApplied:
    case TraceKind::kHealthSample:
      return Severity::kDebug;
    case TraceKind::kHeartbeatMiss:
    case TraceKind::kSuspicionRaised:
    case TraceKind::kSuspectSent:
    case TraceKind::kProbeRefuted:
    case TraceKind::kFailureHeld:
    case TraceKind::kReset:
    case TraceKind::kReportNeedFull:
    case TraceKind::kDomainReportNeedFull:
    case TraceKind::kFaultInjected:
    case TraceKind::kTwoPcAbort:
    case TraceKind::kGscDeactivated:
    case TraceKind::kRootDeactivated:
    case TraceKind::kRootDomainExpired:
    case TraceKind::kGscDeathUnknown:
      return Severity::kWarn;
    case TraceKind::kDeathDeclared:
    case TraceKind::kFailureCommitted:
    case TraceKind::kNodeDown:
      return Severity::kError;
    default:
      return Severity::kInfo;
  }
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

namespace {

void append_u64(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  out += buf;
}

}  // namespace

std::string to_json(const TraceRecord& record) {
  std::string out;
  out.reserve(128);
  out += "{\"type\":\"trace\",\"kind\":\"";
  out += to_string(record.kind);
  out += "\",\"sev\":\"";
  out += to_string(record.severity);
  out += "\",\"t_us\":";
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld",
                static_cast<long long>(record.time));
  out += buf;
  if (!record.source.is_unspecified()) {
    out += ",\"src\":\"";
    out += record.source.to_string();
    out += '"';
  }
  if (!record.peer.is_unspecified()) {
    out += ",\"peer\":\"";
    out += record.peer.to_string();
    out += '"';
  }
  if (record.node.valid()) {
    out += ",\"node\":";
    append_u64(out, record.node.value());
  }
  if (record.vlan.valid()) {
    out += ",\"vlan\":";
    append_u64(out, record.vlan.value());
  }
  out += ",\"a\":";
  append_u64(out, record.a);
  out += ",\"b\":";
  append_u64(out, record.b);
  if (!record.detail.empty()) {
    out += ",\"detail\":\"";
    append_json_escaped(out, record.detail);
    out += '"';
  }
  out += '}';
  return out;
}

void emit_trace(TraceBus* bus, TraceKind kind, sim::SimTime time,
                util::IpAddress source, util::IpAddress peer, std::uint64_t a,
                std::uint64_t b, std::string_view detail, util::NodeId node,
                util::VlanId vlan) {
  if (bus == nullptr || !bus->wants_kind(kind)) return;
  TraceRecord record;
  record.kind = kind;
  record.severity = default_severity(kind);
  record.time = time;
  record.source = source;
  record.peer = peer;
  record.node = node;
  record.vlan = vlan;
  record.a = a;
  record.b = b;
  record.detail = std::string(detail);
  bus->publish(record);
}

}  // namespace gs::obs
