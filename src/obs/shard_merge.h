// Seed-stable merging of per-shard trace streams.
//
// Each shard of a sharded run publishes TraceRecords on its own bus, in its
// own simulated-time order. The merged farm-wide view orders records by
// (time, shard, seq): `seq` is the record's publish index within its shard,
// so the triple is a pure function of the simulated traffic — merging the
// same per-shard streams always yields the same sequence, and a digest of
// the merged stream is the determinism suite's comparison key. A one-shard
// run's merged stream is exactly its only shard's stream, byte-identical to
// an unsharded run's.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace gs::obs {

struct ShardTraceRecord {
  std::size_t shard = 0;
  std::uint64_t seq = 0;  // publish index within the shard's stream
  TraceRecord record;
};

// Merges per-shard streams (index == shard, each already in publish order)
// into one stream ordered by (time, shard, seq).
[[nodiscard]] std::vector<ShardTraceRecord> merge_shard_traces(
    const std::vector<std::vector<TraceRecord>>& per_shard);

// The merged stream as JSONL (one to_json line per record, '\n'-terminated)
// — the byte-identity comparison format.
[[nodiscard]] std::string shard_trace_jsonl(
    const std::vector<ShardTraceRecord>& merged);

// FNV-1a over shard_trace_jsonl, the determinism suite's compact digest.
[[nodiscard]] std::uint64_t shard_trace_digest(
    const std::vector<ShardTraceRecord>& merged);

}  // namespace gs::obs
