#include "obs/spans.h"

#include <string>

namespace gs::obs {

namespace {

constexpr std::size_t idx(SpanKind kind) {
  return static_cast<std::size_t>(kind);
}
constexpr std::size_t idx(AbandonCause cause) {
  return static_cast<std::size_t>(cause);
}

// Every trace kind that is a span edge. Subscribing to exactly this set
// keeps the bus mask tight: kinds nobody else watches stay unpublished.
constexpr std::uint64_t kSpanEdgeMask = trace_mask(
    {TraceKind::kFaultInjected, TraceKind::kFaultCleared,
     TraceKind::kBeaconSent, TraceKind::kViewInstalled,
     TraceKind::kTwoPcPrepare, TraceKind::kTwoPcAbort, TraceKind::kReset,
     TraceKind::kReportSent, TraceKind::kGscReportApplied,
     TraceKind::kGscReportDup, TraceKind::kReportNeedFull,
     TraceKind::kDeathDeclared, TraceKind::kTakeover,
     TraceKind::kFailureCommitted, TraceKind::kNodeDown,
     TraceKind::kGscActivated, TraceKind::kGscDeactivated,
     TraceKind::kGscAdapterAlive, TraceKind::kGscDeathUnknown,
     TraceKind::kDomainReportSent, TraceKind::kDomainReportNeedFull,
     TraceKind::kDomainReportDropped,
     TraceKind::kRootReportApplied, TraceKind::kRootReportDup,
     TraceKind::kRootActivated, TraceKind::kRootDeactivated});

}  // namespace

std::string_view to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kDetection: return "detection";
    case SpanKind::kViewChange: return "view_change";
    case SpanKind::kJoin: return "join";
    case SpanKind::kReport: return "report";
    case SpanKind::kFailover: return "failover";
    case SpanKind::kDomainReport: return "domain_report";
    case SpanKind::kCount_: break;
  }
  return "?";
}

std::string_view to_string(AbandonCause cause) {
  switch (cause) {
    case AbandonCause::kRecovered: return "recovered";
    case AbandonCause::kAlreadyDead: return "already_dead";
    case AbandonCause::kGscFailover: return "gsc_failover";
    case AbandonCause::kDied: return "died";
    case AbandonCause::kAborted2Pc: return "aborted_2pc";
    case AbandonCause::kDemoted: return "demoted";
    case AbandonCause::kSuperseded: return "superseded";
    case AbandonCause::kDuplicate: return "duplicate";
    case AbandonCause::kNeedFull: return "need_full";
    case AbandonCause::kReset: return "reset";
    case AbandonCause::kUnknownToGsc: return "unknown_to_gsc";
    case AbandonCause::kCount_: break;
  }
  return "?";
}

std::string_view SpanTracker::histogram_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kDetection: return "span.detection_us";
    case SpanKind::kViewChange: return "span.view_change_us";
    case SpanKind::kJoin: return "span.join_us";
    case SpanKind::kReport: return "span.report_us";
    case SpanKind::kFailover: return "span.failover_us";
    case SpanKind::kDomainReport: return "span.domain_report_us";
    case SpanKind::kCount_: break;
  }
  return "?";
}

SpanTracker::SpanTracker(TraceBus& bus, util::StatsRegistry* registry)
    : registry_(registry != nullptr ? registry : &own_registry_) {
  subscription_ = bus.subscribe(
      kSpanEdgeMask, [this](const TraceRecord& record) { on_record(record); });
}

util::Counter& SpanTracker::span_counter(SpanKind kind,
                                         std::string_view outcome) {
  std::string name = "span.";
  name += to_string(kind);
  name += '.';
  name += outcome;
  return registry_->counter(name);
}

void SpanTracker::open(SpanKind kind) {
  ++opened_[idx(kind)];
  ++open_now_[idx(kind)];
  watermark_ = std::max(watermark_, open_total());
  span_counter(kind, "opened").add();
}

void SpanTracker::close(SpanKind kind, sim::SimTime opened_at,
                        sim::SimTime now) {
  ++closed_[idx(kind)];
  --open_now_[idx(kind)];
  span_counter(kind, "closed").add();
  registry_->histogram(histogram_name(kind)).record(now - opened_at);
}

void SpanTracker::abandon(SpanKind kind, AbandonCause cause) {
  ++abandoned_[idx(kind)][idx(cause)];
  --open_now_[idx(kind)];
  std::string outcome = "abandoned.";
  outcome += to_string(cause);
  span_counter(kind, outcome).add();
}

void SpanTracker::unmatched(SpanKind kind) {
  ++unmatched_[idx(kind)];
  span_counter(kind, "unmatched_close").add();
}

std::uint64_t SpanTracker::open_count(SpanKind kind) const {
  return open_now_[idx(kind)];
}

std::uint64_t SpanTracker::open_total() const {
  std::uint64_t total = 0;
  for (std::uint64_t n : open_now_) total += n;
  return total;
}

std::uint64_t SpanTracker::opened(SpanKind kind) const {
  return opened_[idx(kind)];
}

std::uint64_t SpanTracker::closed(SpanKind kind) const {
  return closed_[idx(kind)];
}

std::uint64_t SpanTracker::abandoned(SpanKind kind) const {
  std::uint64_t total = 0;
  for (std::uint64_t n : abandoned_[idx(kind)]) total += n;
  return total;
}

std::uint64_t SpanTracker::abandoned(SpanKind kind, AbandonCause cause) const {
  return abandoned_[idx(kind)][idx(cause)];
}

std::uint64_t SpanTracker::unmatched_closes(SpanKind kind) const {
  return unmatched_[idx(kind)];
}

std::vector<SpanTracker::OpenSpan> SpanTracker::open_spans() const {
  std::vector<OpenSpan> out;
  for (const auto& [ip, t] : targets_) {
    if (t.fault_at >= 0)
      out.push_back({SpanKind::kDetection, ip, t.fault_at});
    if (t.join_open >= 0) out.push_back({SpanKind::kJoin, ip, t.join_open});
  }
  for (const auto& [ip, p] : open_proposals_)
    out.push_back({SpanKind::kViewChange, ip, p.opened_at});
  for (const auto& [ip, r] : open_reports_)
    out.push_back({SpanKind::kReport, ip, r.opened_at});
  for (const auto& [ip, r] : open_domain_reports_)
    out.push_back({SpanKind::kDomainReport, ip, r.opened_at});
  if (failover_open_)
    out.push_back({SpanKind::kFailover, failed_gsc_, failover_opened_at_});
  return out;
}

void SpanTracker::on_record(const TraceRecord& record) {
  const sim::SimTime now = record.time;
  switch (record.kind) {
    case TraceKind::kFaultInjected: {
      Target& t = targets_[record.source];
      // A fault tears down whatever the adapter was mid-way through.
      if (t.join_open >= 0) {
        abandon(SpanKind::kJoin, AbandonCause::kDied);
        t.join_open = -1;
      }
      // Only a full NIC death (HealthState::kDown == 1, the `a` payload)
      // forces the protocol back to discovery. The partial §3 modes keep
      // the instance running — a recv-dead leader stays committed and
      // keeps beaconing, so clearing `installed` here would open a join
      // span no view install ever closes. Partial-mode victims that do
      // get evicted re-enter discovery through kReset, which clears the
      // flag at the right moment.
      if (record.a == 1) t.installed = false;
      t.faulted = true;
      if (auto it = open_reports_.find(record.source);
          it != open_reports_.end()) {
        abandon(SpanKind::kReport, AbandonCause::kDied);
        open_reports_.erase(it);
      }
      if (auto it = open_domain_reports_.find(record.source);
          it != open_domain_reports_.end()) {
        abandon(SpanKind::kDomainReport, AbandonCause::kDied);
        open_domain_reports_.erase(it);
      }
      if (t.fault_at >= 0) {
        // Back-to-back fault without an intervening clear (health moved
        // between two non-kUp states through kUp edges is the only way
        // fabric re-emits; treat as a fresh episode).
        abandon(SpanKind::kDetection, AbandonCause::kSuperseded);
        t.fault_at = -1;
        t.leader_declared = false;
      }
      if (t.central_dead) {
        // Central already holds the victim dead: committing this fault
        // would be a no-op there, so there is nothing to time.
        ++opened_[idx(SpanKind::kDetection)];
        span_counter(SpanKind::kDetection, "opened").add();
        ++abandoned_[idx(SpanKind::kDetection)]
                    [idx(AbandonCause::kAlreadyDead)];
        span_counter(SpanKind::kDetection, "abandoned.already_dead").add();
      } else {
        open(SpanKind::kDetection);
        t.fault_at = now;
        t.leader_declared = false;
      }
      if (record.node.valid()) {
        NodeFaults& nf = node_faults_[record.node];
        if (nf.down == 0) {
          nf.first_fault = now;
          nf.declared = false;
        }
        ++nf.down;
      }
      break;
    }
    case TraceKind::kFaultCleared: {
      Target& t = targets_[record.source];
      t.faulted = false;
      if (t.fault_at >= 0) {
        abandon(SpanKind::kDetection, AbandonCause::kRecovered);
        t.fault_at = -1;
        t.leader_declared = false;
      }
      if (record.node.valid()) {
        auto it = node_faults_.find(record.node);
        if (it != node_faults_.end() && --it->second.down == 0)
          node_faults_.erase(it);
      }
      break;
    }
    case TraceKind::kBeaconSent: {
      Target& t = targets_[record.source];
      if (!t.installed && !t.faulted && t.join_open < 0) {
        open(SpanKind::kJoin);
        t.join_open = now;
      }
      break;
    }
    case TraceKind::kViewInstalled: {
      Target& t = targets_[record.source];
      t.installed = true;
      if (t.join_open >= 0) {
        close(SpanKind::kJoin, t.join_open, now);
        t.join_open = -1;
      }
      if (record.peer == record.source) {
        // Installed as leader: this is the commit of its own proposal.
        auto it = open_proposals_.find(record.source);
        if (it != open_proposals_.end() && it->second.id == record.a) {
          close(SpanKind::kViewChange, it->second.opened_at, now);
          open_proposals_.erase(it);
        }
      } else {
        // Installed as a member of someone else's view: any in-flight
        // report of its former leadership is moot — the new leader
        // reports for the merged group. (The coordinator-side proposal,
        // if one was open, is aborted by the kTwoPcAbort that
        // clear_leader_duty_state emits right after this record.)
        if (auto it = open_reports_.find(record.source);
            it != open_reports_.end()) {
          abandon(SpanKind::kReport, AbandonCause::kDemoted);
          open_reports_.erase(it);
        }
      }
      break;
    }
    case TraceKind::kTwoPcPrepare: {
      auto [it, inserted] =
          open_proposals_.try_emplace(record.source, OpenKeyed{record.a, now});
      if (!inserted) {
        if (it->second.id == record.a) break;  // retry of the same round
        abandon(SpanKind::kViewChange, AbandonCause::kSuperseded);
        it->second = OpenKeyed{record.a, now};
      }
      open(SpanKind::kViewChange);
      break;
    }
    case TraceKind::kTwoPcAbort: {
      auto it = open_proposals_.find(record.source);
      if (it != open_proposals_.end() && it->second.id == record.a) {
        abandon(SpanKind::kViewChange, record.b == 1
                                           ? AbandonCause::kAborted2Pc
                                           : AbandonCause::kDemoted);
        open_proposals_.erase(it);
      }
      break;
    }
    case TraceKind::kReset: {
      Target& t = targets_[record.source];
      t.installed = false;
      if (t.join_open >= 0) {
        abandon(SpanKind::kJoin, AbandonCause::kReset);
        t.join_open = -1;
      }
      // GsDaemon::Hooks::on_reset drops the outstanding report on the
      // floor, so its span can never close.
      if (auto it = open_reports_.find(record.source);
          it != open_reports_.end()) {
        abandon(SpanKind::kReport, AbandonCause::kReset);
        open_reports_.erase(it);
      }
      break;
    }
    case TraceKind::kReportSent: {
      auto [it, inserted] =
          open_reports_.try_emplace(record.source, OpenKeyed{record.a, now});
      if (!inserted) {
        if (it->second.id == record.a) break;  // retry of the same seq
        abandon(SpanKind::kReport, AbandonCause::kSuperseded);
        it->second = OpenKeyed{record.a, now};
      }
      open(SpanKind::kReport);
      break;
    }
    case TraceKind::kDomainReportSent: {
      auto [it, inserted] = open_domain_reports_.try_emplace(
          record.source, OpenKeyed{record.a, now});
      if (!inserted) {
        if (it->second.id == record.a) break;  // retry of the same seq
        abandon(SpanKind::kDomainReport, AbandonCause::kSuperseded);
        it->second = OpenKeyed{record.a, now};
      }
      open(SpanKind::kDomainReport);
      break;
    }
    case TraceKind::kDomainReportDropped: {
      // The uplink's domain Central deactivated with this digest in flight:
      // the retry timer is gone and a demoted standby never sends again, so
      // no later record can close or supersede the span. (On a node death
      // this edge precedes the adapter's kFaultInjected — the daemon halts
      // before the fabric faults its NICs — so the abandon reads kDemoted,
      // which is still the truth: the Central went away under the digest.)
      auto it = open_domain_reports_.find(record.source);
      if (it != open_domain_reports_.end() && it->second.id == record.a) {
        abandon(SpanKind::kDomainReport, AbandonCause::kDemoted);
        open_domain_reports_.erase(it);
      }
      break;
    }
    case TraceKind::kDomainReportNeedFull: {
      auto it = open_domain_reports_.find(record.source);
      if (it != open_domain_reports_.end() && it->second.id == record.a) {
        abandon(SpanKind::kDomainReport, AbandonCause::kNeedFull);
        open_domain_reports_.erase(it);
      }
      break;
    }
    case TraceKind::kRootReportApplied: {
      auto it = open_domain_reports_.find(record.peer);
      if (it != open_domain_reports_.end() && it->second.id == record.a) {
        close(SpanKind::kDomainReport, it->second.opened_at, now);
        open_domain_reports_.erase(it);
      } else {
        unmatched(SpanKind::kDomainReport);
      }
      break;
    }
    case TraceKind::kRootReportDup: {
      auto it = open_domain_reports_.find(record.peer);
      if (it != open_domain_reports_.end() && it->second.id == record.a) {
        abandon(SpanKind::kDomainReport, AbandonCause::kDuplicate);
        open_domain_reports_.erase(it);
      }
      break;
    }
    case TraceKind::kRootActivated:
    case TraceKind::kRootDeactivated: {
      // The root's tables (re)start empty either way: in-flight digests can
      // no longer close against the instance that opened them.
      while (!open_domain_reports_.empty()) {
        abandon(SpanKind::kDomainReport, AbandonCause::kGscFailover);
        open_domain_reports_.erase(open_domain_reports_.begin());
      }
      break;
    }
    case TraceKind::kGscReportApplied: {
      auto it = open_reports_.find(record.peer);
      if (it != open_reports_.end() && it->second.id == record.a) {
        close(SpanKind::kReport, it->second.opened_at, now);
        open_reports_.erase(it);
      } else {
        unmatched(SpanKind::kReport);
      }
      if (failover_open_) {
        // First report landing in any active Central after a GSC loss:
        // the reporting hierarchy is flowing again.
        close(SpanKind::kFailover, failover_opened_at_, now);
        failover_open_ = false;
      }
      break;
    }
    case TraceKind::kGscReportDup: {
      auto it = open_reports_.find(record.peer);
      if (it != open_reports_.end() && it->second.id == record.a) {
        abandon(SpanKind::kReport, AbandonCause::kDuplicate);
        open_reports_.erase(it);
      }
      break;
    }
    case TraceKind::kReportNeedFull: {
      auto it = open_reports_.find(record.source);
      if (it != open_reports_.end() && it->second.id == record.a) {
        abandon(SpanKind::kReport, AbandonCause::kNeedFull);
        open_reports_.erase(it);
      }
      break;
    }
    case TraceKind::kDeathDeclared:
    case TraceKind::kTakeover: {
      // Leader-side detection: the group removed the victim. Central's
      // commit (the span close) still has the move window ahead of it.
      Target& t = targets_[record.peer];
      if (t.fault_at >= 0 && !t.leader_declared) {
        registry_->histogram("span.detection_leader_us")
            .record(now - t.fault_at);
        t.leader_declared = true;
      }
      break;
    }
    case TraceKind::kFailureCommitted: {
      Target& t = targets_[record.peer];
      if (t.fault_at >= 0) {
        close(SpanKind::kDetection, t.fault_at, now);
        t.fault_at = -1;
        t.leader_declared = false;
      } else {
        // Central can legitimately commit failures with no injected
        // adapter fault behind them: switch deaths, partitions, and
        // lease expiries all leave the adapter hardware healthy.
        unmatched(SpanKind::kDetection);
      }
      t.central_dead = true;
      break;
    }
    case TraceKind::kNodeDown: {
      auto it = node_faults_.find(record.node);
      if (it != node_faults_.end() && !it->second.declared &&
          it->second.down > 0) {
        registry_->histogram("span.node_detection_us")
            .record(now - it->second.first_fault);
        registry_->counter("span.node_detection.observed").add();
        it->second.declared = true;
      }
      break;
    }
    case TraceKind::kGscAdapterAlive: {
      targets_[record.peer].central_dead = false;
      break;
    }
    case TraceKind::kGscDeathUnknown: {
      // The death notice reached a Central with no record of the victim
      // and was consumed there — the leader got its ack and will never
      // resend, so no Central can commit this failure.
      Target& t = targets_[record.peer];
      if (t.fault_at >= 0) {
        abandon(SpanKind::kDetection, AbandonCause::kUnknownToGsc);
        t.fault_at = -1;
        t.leader_declared = false;
      }
      break;
    }
    case TraceKind::kGscActivated: {
      // Central::activate always starts from empty tables, so every
      // verdict the tracker mirrored is void — including failure commits
      // the previous Central was still holding for the move window, which
      // died with it. A victim's removal can also race the full-snapshot
      // rebuild (snapshots skip removals of unknown adapters), in which
      // case no Central will ever commit it. Either way a detection span
      // that straddles a GSC handover would measure failover disruption,
      // not detection; abandon them all. A close the new Central does
      // produce for such a victim lands as an unmatched_close.
      for (auto& [ip, t] : targets_) {
        t.central_dead = false;
        if (t.fault_at >= 0) {
          abandon(SpanKind::kDetection, AbandonCause::kGscFailover);
          t.fault_at = -1;
          t.leader_declared = false;
        }
      }
      active_gsc_ = record.source;
      break;
    }
    case TraceKind::kGscDeactivated: {
      // Deactivation cancels the failure commits that Central was still
      // holding for the move window, and during a dual-Central overlap
      // (stale partition-island GSC beside the real one) a victim's death
      // notice may have reached only the dying instance — the survivor
      // will never commit it. Abandon all open detections: a commit some
      // Central still produces lands as an unmatched_close.
      for (auto& [ip, t] : targets_) {
        if (t.fault_at >= 0) {
          abandon(SpanKind::kDetection, AbandonCause::kGscFailover);
          t.fault_at = -1;
          t.leader_declared = false;
        }
      }
      if (record.source == active_gsc_) {
        if (failover_open_)
          abandon(SpanKind::kFailover, AbandonCause::kSuperseded);
        open(SpanKind::kFailover);
        failover_open_ = true;
        failover_opened_at_ = now;
        failed_gsc_ = record.source;
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace gs::obs
