#include "obs/trace_check.h"

#include <sstream>

namespace gs::obs {

TraceInvariants::TraceInvariants(TraceBus& bus)
    : subscription_(bus.subscribe(
          trace_mask({TraceKind::kTwoPcPrepare, TraceKind::kTwoPcCommit,
                      TraceKind::kGscReportApplied, TraceKind::kGscReportDup}),
          [this](const TraceRecord& record) { on_record(record); })) {}

void TraceInvariants::on_record(const TraceRecord& record) {
  ++records_checked_;

  if (record.kind == TraceKind::kGscReportApplied) {
    applied_[{record.source, record.peer}] = {record.a, record.b};
    return;
  }
  if (record.kind == TraceKind::kGscReportDup) {
    // The daemon is stop-and-wait, so the only report a leader can
    // legitimately have in duplicate flight is the last one applied. A full
    // snapshot dup-acked against anything else was fresh state Central
    // threw away (the restarted leader's regressed seq counter).
    auto it = applied_.find({record.source, record.peer});
    if (it == applied_.end() || it->second.seq != record.a ||
        it->second.view != record.b) {
      std::ostringstream detail;
      detail << "full snapshot from " << record.peer << " (seq " << record.a
             << ", view " << record.b
             << ") acked as a duplicate but never applied";
      if (it != applied_.end())
        detail << " (last applied: seq " << it->second.seq << ", view "
               << it->second.view << ")";
      violations_.push_back({record.time, record.source, detail.str()});
    }
    return;
  }

  CoordinatorState& state = coordinators_[record.source];
  const std::uint64_t view = record.a;

  if (record.kind == TraceKind::kTwoPcPrepare) {
    state.prepared_views.insert(view);
    return;
  }

  // kTwoPcCommit.
  if (!state.prepared_views.count(view)) {
    std::ostringstream detail;
    detail << "2PC commit for view " << view
           << " that this coordinator never prepared";
    violations_.push_back({record.time, record.source, detail.str()});
  }
  if (view <= state.last_commit_view) {
    std::ostringstream detail;
    detail << "2PC commit view went backwards: " << view << " after "
           << state.last_commit_view;
    violations_.push_back({record.time, record.source, detail.str()});
  }
  state.last_commit_view = std::max(state.last_commit_view, view);
  // Committed views retire every prepared view at or below them; the set
  // stays bounded by in-flight proposals.
  state.prepared_views.erase(state.prepared_views.begin(),
                             state.prepared_views.upper_bound(view));
}

}  // namespace gs::obs
