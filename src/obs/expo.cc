#include "obs/expo.h"

#include <cstdio>
#include <string>

#include "obs/trace.h"  // append_json_escaped

namespace gs::obs::expo {

namespace {

// Splits a registry key into its base name and inline label block.
// "wire.frames{vlan=\"12\"}" -> {"wire.frames", "vlan=\"12\""}.
struct SplitName {
  std::string_view base;
  std::string_view labels;  // without braces, empty if unlabeled
};

SplitName split_name(std::string_view name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos || name.back() != '}')
    return {name, {}};
  return {name.substr(0, brace),
          name.substr(brace + 1, name.size() - brace - 2)};
}

// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; registry names use
// dots. Namespacing with gs_ also guarantees a legal leading character.
std::string prom_name(std::string_view base) {
  std::string out = "gs_";
  for (char c : base) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void append_double(std::string& out, double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  out += buf;
}

void append_i64(std::string& out, std::int64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  out += buf;
}

// name{existing,extra} value\n  — any of labels/extra may be empty.
void append_sample(std::string& out, const std::string& name,
                   std::string_view labels, std::string_view extra,
                   double value) {
  out += name;
  if (!labels.empty() || !extra.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra.empty()) out += ',';
    out += extra;
    out += '}';
  }
  out += ' ';
  append_double(out, value);
  out += '\n';
}

void append_type(std::string& out, const std::string& name,
                 std::string_view type, std::string& last_family) {
  if (name == last_family) return;  // one TYPE line per family
  last_family = name;
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string to_prometheus(const util::StatsRegistry& registry) {
  std::string out;
  std::string last_family;
  for (const auto& [key, counter] : registry.counters()) {
    const SplitName split = split_name(key);
    const std::string name = prom_name(split.base);
    append_type(out, name, "counter", last_family);
    append_sample(out, name, split.labels, {},
                  static_cast<double>(counter.value()));
  }
  last_family.clear();
  for (const auto& [key, gauge] : registry.gauges()) {
    const SplitName split = split_name(key);
    const std::string name = prom_name(split.base);
    append_type(out, name, "gauge", last_family);
    append_sample(out, name, split.labels, {}, gauge.value());
  }
  last_family.clear();
  for (const auto& [key, histogram] : registry.histograms()) {
    const SplitName split = split_name(key);
    const std::string name = prom_name(split.base);
    append_type(out, name, "summary", last_family);
    append_sample(out, name, split.labels, "quantile=\"0.5\"",
                  static_cast<double>(histogram.p50()));
    append_sample(out, name, split.labels, "quantile=\"0.9\"",
                  static_cast<double>(histogram.quantile(0.9)));
    append_sample(out, name, split.labels, "quantile=\"0.99\"",
                  static_cast<double>(histogram.p99()));
    append_sample(out, name + "_sum", split.labels, {},
                  histogram.mean() * static_cast<double>(histogram.count()));
    append_sample(out, name + "_count", split.labels, {},
                  static_cast<double>(histogram.count()));
  }
  return out;
}

std::string counter_line(std::string_view name, std::uint64_t value) {
  std::string line = "{\"type\":\"counter\",\"name\":\"";
  append_json_escaped(line, name);
  line += "\",\"value\":";
  append_u64(line, value);
  line += '}';
  return line;
}

std::string gauge_line(std::string_view name, double value) {
  std::string line = "{\"type\":\"gauge\",\"name\":\"";
  append_json_escaped(line, name);
  line += "\",\"value\":";
  append_double(line, value);
  line += '}';
  return line;
}

std::string histogram_line(std::string_view name,
                           const util::Histogram& histogram) {
  std::string line = "{\"type\":\"histogram\",\"name\":\"";
  append_json_escaped(line, name);
  line += '"';
  char buf[192];
  std::snprintf(buf, sizeof buf,
                ",\"count\":%llu,\"min\":%lld,\"max\":%lld,\"mean\":%.3f,"
                "\"stddev\":%.3f,\"p50\":%lld,\"p99\":%lld}",
                static_cast<unsigned long long>(histogram.count()),
                static_cast<long long>(histogram.min()),
                static_cast<long long>(histogram.max()), histogram.mean(),
                histogram.stddev(), static_cast<long long>(histogram.p50()),
                static_cast<long long>(histogram.p99()));
  line += buf;
  return line;
}

std::string to_json(const util::StatsRegistry& registry) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : registry.counters()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, name);
    out += "\":";
    append_u64(out, counter.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : registry.gauges()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, name);
    out += "\":";
    append_double(out, gauge.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : registry.histograms()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, name);
    out += "\":{\"count\":";
    append_u64(out, histogram.count());
    out += ",\"min\":";
    append_i64(out, histogram.min());
    out += ",\"max\":";
    append_i64(out, histogram.max());
    out += ",\"mean\":";
    append_double(out, histogram.mean());
    out += ",\"stddev\":";
    append_double(out, histogram.stddev());
    out += ",\"p50\":";
    append_i64(out, histogram.p50());
    out += ",\"p90\":";
    append_i64(out, histogram.quantile(0.9));
    out += ",\"p99\":";
    append_i64(out, histogram.p99());
    out += '}';
  }
  out += "}}";
  return out;
}

namespace {

bool write_whole_file(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "expo: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), file) == content.size();
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !closed)
    std::fprintf(stderr, "expo: short write to %s\n", path.c_str());
  return wrote && closed;
}

}  // namespace

bool write_metrics_files(const util::StatsRegistry& registry,
                         const std::string& path) {
  const bool prom = write_whole_file(path, to_prometheus(registry));
  const bool json = write_whole_file(path + ".json", to_json(registry));
  return prom && json;
}

}  // namespace gs::obs::expo
