// Verification of a discovered topology against the configuration database.
//
// GSC hands the verifier its farm-wide discovered view (adapter ip -> VLAN
// it was found on); the verifier diffs it against the database and emits
// typed findings. "Inconsistencies can be flagged and the affected adapters
// disabled, for security reasons, until conflicts are resolved" (§2.2) —
// the caller decides about disabling; the verifier only reports.
#pragma once

#include <string>
#include <vector>

#include "config/configdb.h"
#include "util/ids.h"
#include "util/ip.h"

namespace gs::config {

enum class InconsistencyKind : std::uint8_t {
  // Adapter in the database but never discovered on any segment.
  kMissingAdapter,
  // Discovered adapter whose IP the database does not know.
  kUnknownAdapter,
  // Adapter discovered on a different VLAN than the database expects —
  // the §3.1 signature of an unexpected domain move.
  kWrongVlan,
  // Two discovered adapters presented the same IP.
  kDuplicateIp,
};

[[nodiscard]] std::string_view to_string(InconsistencyKind kind);

struct Inconsistency {
  InconsistencyKind kind;
  util::IpAddress ip;
  util::VlanId expected_vlan;    // invalid where not applicable
  util::VlanId discovered_vlan;  // invalid where not applicable
  std::string detail;
};

struct DiscoveredAdapter {
  util::IpAddress ip;
  util::VlanId vlan;
};

class Verifier {
 public:
  explicit Verifier(const ConfigDb& db) : db_(db) {}

  [[nodiscard]] std::vector<Inconsistency> verify(
      const std::vector<DiscoveredAdapter>& discovered) const;

 private:
  const ConfigDb& db_;
};

}  // namespace gs::config
