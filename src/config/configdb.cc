#include "config/configdb.h"

namespace gs::config {

std::optional<NodeRecord> ConfigDb::node(util::NodeId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return std::nullopt;
  return it->second;
}

std::optional<AdapterRecord> ConfigDb::adapter(util::AdapterId id) const {
  auto it = adapters_.find(id);
  if (it == adapters_.end()) return std::nullopt;
  return it->second;
}

std::optional<AdapterRecord> ConfigDb::adapter_by_ip(util::IpAddress ip) const {
  for (const auto& [id, rec] : adapters_)
    if (rec.ip == ip) return rec;
  return std::nullopt;
}

std::vector<AdapterRecord> ConfigDb::adapters_on_vlan(util::VlanId vlan) const {
  std::vector<AdapterRecord> out;
  for (const auto& [id, rec] : adapters_)
    if (rec.expected_vlan == vlan) out.push_back(rec);
  return out;
}

std::vector<AdapterRecord> ConfigDb::adapters_of_node(util::NodeId node) const {
  std::vector<AdapterRecord> out;
  for (const auto& [id, rec] : adapters_)
    if (rec.node == node) out.push_back(rec);
  return out;
}

std::vector<AdapterRecord> ConfigDb::adapters_on_switch(
    util::SwitchId sw) const {
  std::vector<AdapterRecord> out;
  for (const auto& [id, rec] : adapters_)
    if (rec.wired_switch == sw) out.push_back(rec);
  return out;
}

std::vector<NodeRecord> ConfigDb::all_nodes() const {
  std::vector<NodeRecord> out;
  out.reserve(nodes_.size());
  for (const auto& [id, rec] : nodes_) out.push_back(rec);
  return out;
}

std::vector<AdapterRecord> ConfigDb::all_adapters() const {
  std::vector<AdapterRecord> out;
  out.reserve(adapters_.size());
  for (const auto& [id, rec] : adapters_) out.push_back(rec);
  return out;
}

void ConfigDb::set_expected_vlan(util::AdapterId id, util::VlanId vlan) {
  auto it = adapters_.find(id);
  if (it != adapters_.end()) it->second.expected_vlan = vlan;
}

void ConfigDb::set_node_domain(util::NodeId id, util::DomainId domain) {
  auto it = nodes_.find(id);
  if (it != nodes_.end()) it->second.domain = domain;
}

}  // namespace gs::config
