// The configuration database — the farm's *expected* topology.
//
// The paper inverts the usual relationship (§2.2): instead of nodes reading
// their configuration from the database, GulfStream discovers the topology
// and only GulfStream Central consults the database to flag inconsistencies.
// The database also records the switch wiring that GSC's correlation
// function needs to infer switch failures (§3).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/ids.h"
#include "util/ip.h"

namespace gs::config {

struct AdapterRecord {
  util::AdapterId adapter;
  util::NodeId node;
  util::IpAddress ip;
  util::VlanId expected_vlan;
  util::SwitchId wired_switch;   // physical wiring, for correlation
  util::PortId wired_port;
  bool admin = false;            // connected to the administrative VLAN
};

struct NodeRecord {
  util::NodeId node;
  std::string name;
  util::DomainId domain;
  // May this node host GulfStream Central? (§2.2: only nodes with database
  // and switch-console permissions are eligible.)
  bool central_eligible = false;
};

class ConfigDb {
 public:
  void put_node(const NodeRecord& record) { nodes_[record.node] = record; }
  void put_adapter(const AdapterRecord& record) {
    adapters_[record.adapter] = record;
  }

  [[nodiscard]] std::optional<NodeRecord> node(util::NodeId id) const;
  [[nodiscard]] std::optional<AdapterRecord> adapter(util::AdapterId id) const;
  [[nodiscard]] std::optional<AdapterRecord> adapter_by_ip(
      util::IpAddress ip) const;

  [[nodiscard]] std::vector<AdapterRecord> adapters_on_vlan(
      util::VlanId vlan) const;
  [[nodiscard]] std::vector<AdapterRecord> adapters_of_node(
      util::NodeId node) const;
  [[nodiscard]] std::vector<AdapterRecord> adapters_on_switch(
      util::SwitchId sw) const;
  [[nodiscard]] std::vector<NodeRecord> all_nodes() const;
  [[nodiscard]] std::vector<AdapterRecord> all_adapters() const;

  // Moving a node between domains updates its expected VLANs; GSC applies
  // this when *it* initiates the move, so a subsequent verification pass is
  // clean (§3.1 "if the change is expected ... suppressed").
  void set_expected_vlan(util::AdapterId id, util::VlanId vlan);
  void set_node_domain(util::NodeId id, util::DomainId domain);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t adapter_count() const { return adapters_.size(); }

 private:
  std::map<util::NodeId, NodeRecord> nodes_;
  std::map<util::AdapterId, AdapterRecord> adapters_;
};

}  // namespace gs::config
