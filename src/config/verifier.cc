#include "config/verifier.h"

#include <map>
#include <sstream>

namespace gs::config {

std::string_view to_string(InconsistencyKind kind) {
  switch (kind) {
    case InconsistencyKind::kMissingAdapter: return "missing-adapter";
    case InconsistencyKind::kUnknownAdapter: return "unknown-adapter";
    case InconsistencyKind::kWrongVlan: return "wrong-vlan";
    case InconsistencyKind::kDuplicateIp: return "duplicate-ip";
  }
  return "?";
}

std::vector<Inconsistency> Verifier::verify(
    const std::vector<DiscoveredAdapter>& discovered) const {
  std::vector<Inconsistency> findings;

  // Index the discovery, flagging duplicate IPs as we go.
  std::map<util::IpAddress, DiscoveredAdapter> by_ip;
  for (const DiscoveredAdapter& d : discovered) {
    auto [it, inserted] = by_ip.emplace(d.ip, d);
    if (!inserted) {
      std::ostringstream detail;
      detail << "ip " << d.ip << " discovered on both " << it->second.vlan
             << " and " << d.vlan;
      findings.push_back(Inconsistency{InconsistencyKind::kDuplicateIp, d.ip,
                                       util::VlanId::invalid(), d.vlan,
                                       detail.str()});
    }
  }

  // Database -> discovery: every expected adapter must have been seen, on
  // the expected VLAN.
  for (const AdapterRecord& rec : db_.all_adapters()) {
    auto it = by_ip.find(rec.ip);
    if (it == by_ip.end()) {
      std::ostringstream detail;
      detail << "expected " << rec.ip << " on " << rec.expected_vlan
             << ", never discovered";
      findings.push_back(Inconsistency{InconsistencyKind::kMissingAdapter,
                                       rec.ip, rec.expected_vlan,
                                       util::VlanId::invalid(), detail.str()});
      continue;
    }
    if (it->second.vlan != rec.expected_vlan) {
      std::ostringstream detail;
      detail << rec.ip << " expected on " << rec.expected_vlan
             << " but discovered on " << it->second.vlan;
      findings.push_back(Inconsistency{InconsistencyKind::kWrongVlan, rec.ip,
                                       rec.expected_vlan, it->second.vlan,
                                       detail.str()});
    }
  }

  // Discovery -> database: unknown IPs are a security finding (§2.2).
  for (const auto& [ip, d] : by_ip) {
    if (!db_.adapter_by_ip(ip).has_value()) {
      std::ostringstream detail;
      detail << ip << " discovered on " << d.vlan << " but not in database";
      findings.push_back(Inconsistency{InconsistencyKind::kUnknownAdapter, ip,
                                       util::VlanId::invalid(), d.vlan,
                                       detail.str()});
    }
  }

  return findings;
}

}  // namespace gs::config
