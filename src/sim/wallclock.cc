#include "sim/wallclock.h"

#include <algorithm>

#include "util/logging.h"

namespace gs::sim {

SimTime WallClock::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
  last_now_ = std::max(last_now_, static_cast<SimTime>(us));
  return last_now_;
}

Timer WallClock::at(SimTime when, std::function<void()> fn) {
  const EventId id = queue_.push(std::max(when, now()), std::move(fn));
  return make_timer(id);
}

std::optional<SimTime> WallClock::next_deadline() const {
  if (queue_.empty()) return std::nullopt;
  return queue_.next_time();
}

std::size_t WallClock::run_due() {
  std::size_t n = 0;
  // Cutoff snapshotted up front: a callback that re-arms itself at now()+0
  // runs on the *next* driver pass, not forever within this one.
  const SimTime cutoff = now();
  while (!queue_.empty() && queue_.next_time() <= cutoff) {
    auto [when, fn] = queue_.pop();
    (void)when;
    fn();
    ++executed_;
    ++n;
  }
  return n;
}

void WallClock::install_log_clock() {
  util::Logger::instance().set_clock([this] { return now(); });
}

}  // namespace gs::sim
