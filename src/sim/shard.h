// Conservative epoch-barrier driver for sharded simulation.
//
// A ShardSet owns one persistent worker thread per shard; each shard is a
// plain single-threaded Simulator that the worker advances in lockstep
// epoch windows:
//
//   while work remains:
//     every worker:  sim[i]->run_window(floor + epoch)     (in parallel)
//     barrier
//     main thread:   drain mailboxes -> sim[dst]->at(...)  (alone)
//     floor += epoch
//
// Within a window shards share nothing; cross-shard effects travel as
// mailbox posts stamped (when, from_shard, seq) and are injected between
// windows, sorted by that stamp — so injection order (and therefore each
// destination queue's tiebreak order) is a pure function of the simulated
// traffic, never of thread scheduling. The conservative correctness
// condition is the caller's to establish: a post made during window
// [t, t+W) must target when >= t+W (ShardSet checks this). net::ShardRouter
// satisfies it by sizing W at or below the minimum base latency of any
// cross-shard segment.
//
// Worker threads are persistent for a reason beyond reuse cost: pooled
// net::Payload Reps live in thread-local free lists, so every event of shard
// i must run on one fixed thread for the shard's entire lifetime, including
// teardown (for_each_shard runs cleanup on the owning threads before the
// destructor joins them).
#pragma once

#include <barrier>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace gs::sim {

class ShardSet {
 public:
  // `shards` are borrowed and must outlive the ShardSet's shutdown(). Epoch
  // is the lockstep window width; every shard's clock must already agree
  // (freshly constructed simulators all start at 0).
  ShardSet(std::vector<Simulator*> shards, SimDuration epoch);
  ~ShardSet();

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return sims_.size(); }
  [[nodiscard]] SimDuration epoch() const { return epoch_; }
  // The epoch floor: every shard's clock sits here between runs.
  [[nodiscard]] SimTime now() const { return floor_; }

  // Cross-shard handoff. Callable from shard `from`'s worker while a window
  // runs (the only concurrent caller of a given (from, to) mailbox is shard
  // `from`'s thread) and from the main thread between runs. `when` must not
  // land inside the currently running window — the conservative condition.
  // Posts are injected at the next barrier in (when, from, seq) order.
  void post(std::size_t from, std::size_t to, SimTime when,
            std::function<void()> fn);

  // Advances all shards in lockstep windows until every queue and mailbox
  // drains or the floor reaches `deadline` (whichever first; the floor only
  // moves in whole epochs, so it can end past `deadline` by less than one
  // epoch). Returns the number of events executed across all shards.
  std::size_t run_until(SimTime deadline);

  // Runs fn(shard_index) on every shard's worker thread, one after the
  // barrier — the hook for work that must touch thread-local state, e.g.
  // draining payload pools at teardown.
  void for_each_shard(const std::function<void(std::size_t)>& fn);

  // Joins the workers. Idempotent; the destructor calls it. After shutdown
  // the ShardSet is inert (run_until and for_each_shard must not be called).
  void shutdown();

 private:
  enum class Phase : std::uint8_t { kWindow, kCall, kExit };

  struct Post {
    SimTime when = 0;
    std::size_t from = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };

  struct Mailbox {
    std::mutex mu;
    std::vector<Post> posts;
  };

  // Padded so neighbouring shards' event tallies never share a cache line.
  struct alignas(64) ShardState {
    std::uint64_t events = 0;
    std::uint64_t post_seq = 0;
  };

  void worker(std::size_t index);
  [[nodiscard]] bool any_mail();
  void drain_mail();

  std::vector<Simulator*> sims_;
  const SimDuration epoch_;
  SimTime floor_ = 0;
  SimTime window_end_ = 0;  // written by main between barriers only

  Phase phase_ = Phase::kWindow;
  const std::function<void(std::size_t)>* call_ = nullptr;

  std::vector<std::unique_ptr<Mailbox>> mail_;  // [from * n + to]
  std::vector<ShardState> state_;

  // Workers and the main thread all participate; two arrivals bracket each
  // phase (configure -> run -> collect).
  std::barrier<> sync_;
  std::vector<std::thread> workers_;
  bool down_ = false;
};

}  // namespace gs::sim
