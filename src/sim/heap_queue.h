// The original binary-heap pending-event set, kept as the *reference
// implementation* for the timing-wheel EventQueue (sim/event_queue.h).
//
// Ordering is the (when, seq) total order both implementations promise: the
// sequence number is a monotonic push counter, so same-timestamp events pop
// FIFO in scheduling order. The differential tests in tests/sim_test.cc
// drive this heap and the wheel with identical operation streams and demand
// pop-for-pop equality; bench/event_core measures the wheel's speedup
// against it on the heartbeat re-arm pattern. Nothing in the library links
// against this class — it exists so the wheel's claim of byte-identical
// traces is checkable forever, not just on the PR that introduced it.
//
// Storage is bounded under cancel/re-arm churn by the same two mechanisms
// the production queue inherited:
//  * callback slots are generation-tagged and recycled through a free list,
//    so the slot pool peaks at the maximum number of *concurrently* pending
//    events (the callback is released eagerly at cancel time);
//  * when stale (cancelled/superseded) heap entries outnumber live ones the
//    heap is compacted and rebuilt. Rebuilding cannot change pop order:
//    (when, seq) is a total order, so any heap layout pops identically.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/time.h"
#include "util/check.h"

namespace gs::sim {

// Encodes (slot generation << 32 | slot index + 1); 0 is never a valid id,
// which keeps a default-constructed Timer inert. Shared with the wheel so
// the two implementations are drop-in interchangeable in tests.
using EventId = std::uint64_t;

class HeapEventQueue {
 public:
  HeapEventQueue() = default;

  HeapEventQueue(const HeapEventQueue&) = delete;
  HeapEventQueue& operator=(const HeapEventQueue&) = delete;

  // Schedules fn at the given absolute time; returns a handle usable with
  // cancel()/reschedule(). fn must be non-null.
  EventId push(SimTime when, std::function<void()> fn);

  // Cancels a pending event. Returns true if the event was still pending.
  bool cancel(EventId id);

  // Moves a pending event to a new deadline, keeping its callback (no
  // std::function is destroyed or constructed). Ordering is exactly as if
  // the event had been cancelled and re-pushed: the move consumes a fresh
  // sequence number. Returns the new id, or 0 if `id` was no longer
  // pending (fired or cancelled) — the old id is dead either way.
  EventId reschedule(EventId id, SimTime when);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  // Time of the earliest pending (non-cancelled) event. Requires !empty().
  // Const peek: stale entries blocking the top are skimmed through mutable
  // storage (logical constness — the pop order is unaffected).
  [[nodiscard]] SimTime next_time() const;

  // Explicitly drops stale entries off the heap top. next_time()/pop() do
  // this implicitly; exposed so callers holding a const reference can pay
  // the cleanup cost at a chosen point.
  void skim() { skim_stale(); }

  // Removes and returns the earliest pending event. Requires !empty().
  std::pair<SimTime, std::function<void()>> pop();

  // Drops every pending event without running it, releasing the callbacks
  // (and whatever their closures pin) immediately. Outstanding EventIds are
  // invalidated by generation bump, so a later cancel() on them is a safe
  // no-op.
  void clear();

  // --- Introspection (tests/benches) -------------------------------------
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }
  [[nodiscard]] std::size_t heap_size() const { return heap_.size(); }
  [[nodiscard]] std::size_t high_water() const { return high_water_; }

 private:
  // A heap entry does not own the callback — it names a slot plus the
  // generation it was pushed under. An entry whose generation no longer
  // matches its slot is stale (the event fired, was cancelled, or was
  // rescheduled, and the slot may since have been reused).
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;

    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  struct Slot {
    std::uint32_t gen = 0;  // bumped on every release (fire or cancel)
    std::function<void()> fn;
  };

  [[nodiscard]] bool stale(const Entry& e) const {
    return slots_[e.slot].gen != e.gen;
  }
  void release_slot(std::uint32_t slot);
  void skim_stale() const;
  void maybe_compact();

  mutable std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  // recyclable slot indices
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace gs::sim
