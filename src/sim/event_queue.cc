#include "sim/event_queue.h"

#include <algorithm>

namespace gs::sim {

EventId EventQueue::push(SimTime when, std::function<void()> fn) {
  GS_CHECK(fn != nullptr);
  const EventId id = static_cast<EventId>(states_.size()) + 1;
  states_.push_back(State::kPending);
  heap_.push_back(Entry{when, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == 0 || id > states_.size()) return false;
  State& s = states_[id - 1];
  if (s != State::kPending) return false;
  s = State::kCancelled;
  GS_CHECK(live_ > 0);
  --live_;
  return true;
}

void EventQueue::skim_cancelled() {
  while (!heap_.empty() &&
         states_[heap_.front().id - 1] == State::kCancelled) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() {
  GS_CHECK(!empty());
  skim_cancelled();
  return heap_.front().when;
}

std::pair<SimTime, std::function<void()>> EventQueue::pop() {
  GS_CHECK(!empty());
  skim_cancelled();
  GS_CHECK(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  states_[entry.id - 1] = State::kFired;
  --live_;
  return {entry.when, std::move(entry.fn)};
}

}  // namespace gs::sim
