#include "sim/event_queue.h"

#include <algorithm>
#include <bit>

namespace gs::sim {

namespace {

constexpr std::uint64_t encode_id(std::uint32_t slot, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(gen) << 32) |
         (static_cast<std::uint64_t>(slot) + 1);
}

// The stale sweep triggers only once the stale population both exceeds a
// floor (so small queues never pay it) and outnumbers the live entries (so
// the O(entries) sweep amortizes to O(1) per cancel).
constexpr std::size_t kCompactFloor = 64;

bool entry_before(SimTime when_a, std::uint64_t seq_a, SimTime when_b,
                  std::uint64_t seq_b) {
  if (when_a != when_b) return when_a < when_b;
  return seq_a < seq_b;
}

}  // namespace

EventQueue::EventQueue() : buckets_(kLevels * kBuckets) {}

void EventQueue::file(const Entry& e) {
  const auto now_u = static_cast<std::uint64_t>(wheel_now_);
  // Past deadlines (possible through WallClock's monotonic-now clamp racing
  // real time, and through pushes interleaved with pops in the property
  // tests) clamp into the current bucket for *positioning* only; the entry
  // keeps its true (when, seq) key, so it still pops first.
  const std::uint64_t w = std::max(static_cast<std::uint64_t>(e.when), now_u);
  const std::uint64_t diff = w ^ now_u;
  const int level =
      diff == 0 ? 0 : (63 - std::countl_zero(diff)) / kLevelBits;
  const int idx = byte_of(w, level);
  Bucket& b = bucket(level, idx);
  if (level == 0 && idx == byte_of(now_u, 0)) {
    // Appending into the (possibly partially drained) current bucket: the
    // common case — a deadline at or past the tail — keeps it sorted; an
    // out-of-order append (past-time push, cascade interleave) flips the
    // flag and pop() re-sorts lazily.
    if (cur_sorted_ && b.size() > cur_idx_) {
      const Entry& tail = b.back();
      if (entry_before(e.when, e.seq, tail.when, tail.seq))
        cur_sorted_ = false;
    }
  }
  b.push_back(e);
  set_occ(level, idx);
}

EventId EventQueue::push(SimTime when, std::function<void()> fn) {
  GS_CHECK(fn != nullptr);
  GS_CHECK(when >= 0);
  std::uint32_t slot;
  if (free_.empty()) {
    slot = static_cast<std::uint32_t>(slot_gen_.size());
    slot_gen_.emplace_back();
    slot_when_.emplace_back();
    slot_fn_.emplace_back();
  } else {
    slot = free_.back();
    free_.pop_back();
  }
  slot_fn_[slot] = std::move(fn);
  slot_when_[slot] = when;
  const std::uint32_t gen = slot_gen_[slot];
  file(Entry{when, next_seq_++, slot, gen});
  ++live_;
  high_water_ = std::max(high_water_, live_);
  if (min_valid_ && when < min_when_) min_when_ = when;
  return encode_id(slot, gen);
}

bool EventQueue::cancel(EventId id) {
  if (id == 0) return false;
  const auto slot = static_cast<std::uint32_t>((id & 0xFFFF'FFFFull) - 1);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slot_gen_.size() || slot_gen_[slot] != gen) return false;
  const SimTime when = slot_when_[slot];
  release_slot(slot);  // frees the callback (and its captures) eagerly
  GS_CHECK(live_ > 0);
  --live_;
  ++stale_;
  if (min_valid_ && when <= min_when_) min_valid_ = false;
  maybe_compact();
  return true;
}

EventId EventQueue::reschedule(EventId id, SimTime when) {
  if (id == 0) return 0;
  GS_CHECK(when >= 0);
  const auto slot = static_cast<std::uint32_t>((id & 0xFFFF'FFFFull) - 1);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slot_gen_.size() || slot_gen_[slot] != gen) return 0;
  const SimTime old_when = slot_when_[slot];
  const std::uint32_t new_gen = ++slot_gen_[slot];
  // the old wheel entry is now stale; the callback stays in place
  ++stale_;
  slot_when_[slot] = when;
  file(Entry{when, next_seq_++, slot, new_gen});
  if (min_valid_) {
    if (when < min_when_)
      min_when_ = when;
    else if (old_when <= min_when_)
      min_valid_ = false;
  }
  maybe_compact();
  return encode_id(slot, new_gen);
}

void EventQueue::release_slot(std::uint32_t slot) {
  slot_fn_[slot] = nullptr;
  ++slot_gen_[slot];
  free_.push_back(slot);
}

void EventQueue::prepare_current() {
  Bucket& cur = current_bucket();
  if (cur_idx_ > 0) {
    // The prefix was already consumed (popped live entries and skipped stale
    // ones, both accounted at consumption time).
    cur.erase(cur.begin(),
              cur.begin() + static_cast<std::ptrdiff_t>(cur_idx_));
    cur_idx_ = 0;
  }
  const auto removed =
      std::erase_if(cur, [this](const Entry& e) { return stale(e); });
  GS_CHECK(stale_ >= removed);
  stale_ -= removed;
  if (!cur_sorted_) {
    std::sort(cur.begin(), cur.end(), [](const Entry& a, const Entry& b) {
      return entry_before(a.when, a.seq, b.when, b.seq);
    });
    cur_sorted_ = true;
  }
  if (cur.empty()) clear_occ(0, byte_of(static_cast<std::uint64_t>(wheel_now_), 0));
}

void EventQueue::purge_bucket(int level, int idx) {
  Bucket& b = bucket(level, idx);
  for (const Entry& e : b) {
    GS_CHECK(stale(e));
    GS_CHECK(stale_ > 0);
    --stale_;
  }
  b.clear();
  clear_occ(level, idx);
}

SimTime EventQueue::find_min_live() {
  const auto now_u = static_cast<std::uint64_t>(wheel_now_);
  for (int level = 0; level < kLevels; ++level) {
    // Live entries at this level always sit strictly ahead of the wheel's
    // byte (filing guarantees it); buckets at or behind it hold only stale
    // leftovers and are reclaimed when the level next laps.
    const int start = byte_of(now_u, level) + 1;
    for (int word = start >> 6; word < kOccWords; ++word) {
      std::uint64_t bits = occ_[level][word];
      if (word == (start >> 6) && (start & 63) != 0)
        bits &= ~0ull << (start & 63);
      while (bits != 0) {
        const int idx = word * 64 + std::countr_zero(bits);
        bits &= bits - 1;
        const Bucket& b = bucket(level, idx);
        std::size_t i = 0;
        while (i < b.size() && stale(b[i])) ++i;
        if (i == b.size()) {
          purge_bucket(level, idx);
          continue;
        }
        SimTime best = b[i].when;
        // Live entries in one level-0 bucket all name the same microsecond
        // (they differ from the wheel position only in byte 0, and byte 0
        // *is* the bucket index), so the first live entry is the bucket
        // minimum; only coarser buckets need the full scan.
        if (level > 0) {
          for (++i; i < b.size(); ++i)
            if (!stale(b[i]) && b[i].when < best) best = b[i].when;
        }
        return best;
      }
    }
  }
  GS_CHECK(false);  // live_ > 0: a live entry must exist somewhere
  return 0;
}

void EventQueue::advance() {
  // Precondition (pop's drain loop): the current bucket has nothing live at
  // or after the cursor; anything left there is unaccounted stale.
  Bucket& cur = current_bucket();
  GS_CHECK(stale_ >= cur.size() - cur_idx_);
  stale_ -= cur.size() - cur_idx_;
  cur.clear();
  clear_occ(0, byte_of(static_cast<std::uint64_t>(wheel_now_), 0));
  cur_idx_ = 0;

  // A valid min cache (set by a next_time() peek — the run loops all peek
  // before popping — or by a push) names the exact next live deadline, so
  // the scan can be skipped outright. find_min_live also purges all-stale
  // buckets as a side effect; skipping defers that cleanup to the lap
  // purges below and to the stale sweep, which is harmless: such buckets
  // end up behind the wheel's byte at their level, where no scan visits
  // them.
  SimTime t;
  if (min_valid_) {
    t = min_when_;
  } else {
    t = find_min_live();
  }
  const auto old_u = static_cast<std::uint64_t>(wheel_now_);
  const auto new_u = static_cast<std::uint64_t>(t);
  const std::uint64_t diff = old_u ^ new_u;
  GS_CHECK(diff != 0);  // a live event at wheel_now_ would be in cur
  wheel_now_ = t;

  // Highest byte the move changes. Every completed lap below it holds only
  // stale leftovers: a live entry there would name a time before t,
  // contradicting t being the minimum.
  const int lc = (63 - std::countl_zero(diff)) / kLevelBits;
  for (int level = 0; level < lc; ++level) {
    for (int word = 0; word < kOccWords; ++word) {
      std::uint64_t bits = occ_[level][word];
      while (bits != 0) {
        const int idx = word * 64 + std::countr_zero(bits);
        bits &= bits - 1;
        purge_bucket(level, idx);
      }
    }
  }
  // Level-lc buckets strictly between the old and new byte hold only stale
  // leftovers (a live entry there would precede t). On the slow path
  // find_min_live just purged them; on the cached-min path they stay parked
  // behind the wheel's byte — bytes only increase within a level until a
  // coarser crossing laps it, so no scan revisits them before the lap purge
  // above (or the stale sweep) reclaims them.
  const int nb = byte_of(new_u, lc);
  // Cascade the one bucket covering t down to its final levels. Refiling is
  // direct against the new position — entries land at levels < lc (live
  // ones at exactly t land in the new current bucket), so no recursion.
  if (lc > 0) {
    // Swap through a member scratch bucket so vector capacities circulate
    // between the wheel's buckets instead of being freed every cascade —
    // keeps the steady-state re-arm cycle allocation-free.
    cascade_scratch_.clear();
    cascade_scratch_.swap(bucket(lc, nb));
    clear_occ(lc, nb);
    for (const Entry& e : cascade_scratch_) {
      if (stale(e)) {
        GS_CHECK(stale_ > 0);
        --stale_;
        continue;
      }
      file(e);
    }
  }
  // The new current bucket needs no sort. Every bucket accumulates appends
  // in increasing seq order (direct files consume fresh seqs over time, and
  // a cascade replays a bucket's own seq-ordered run into provably-empty
  // finer buckets before any fresh direct file can land there). Live
  // level-0 entries all share one microsecond — only the current bucket
  // ever holds clamped past-deadline pushes, and this bucket just stopped
  // being drained history: any such push lands *after* this advance and
  // runs file()'s tail check. Seq order on a shared `when` is (when, seq)
  // order; stale leftovers from earlier laps sit anywhere but are skipped
  // by generation, not by position.
  cur_sorted_ = true;
}

void EventQueue::maybe_compact() {
  // The wheel is naturally stale-tolerant: dead entries cost nothing until
  // the cascade that covers them, which drops them for free. The sweep only
  // bounds memory, so it can afford a laxer trigger than the heap's
  // stale > live — entries stay bounded at ~5x live, and the steady-state
  // re-arm cycle (1 stale per re-arm, dropped ~one deadline later) almost
  // never trips it.
  if (stale_ < kCompactFloor || stale_ <= 4 * live_) return;
  // Entries never move between buckets here — their filed positions remain
  // valid relative to wheel_now_ — so pop order is untouched.
  prepare_current();
  const int cur = byte_of(static_cast<std::uint64_t>(wheel_now_), 0);
  for (int level = 0; level < kLevels; ++level) {
    for (int word = 0; word < kOccWords; ++word) {
      std::uint64_t bits = occ_[level][word];
      while (bits != 0) {
        const int idx = word * 64 + std::countr_zero(bits);
        bits &= bits - 1;
        if (level == 0 && idx == cur) continue;  // prepare_current did it
        Bucket& b = bucket(level, idx);
        const auto removed =
            std::erase_if(b, [this](const Entry& e) { return stale(e); });
        GS_CHECK(stale_ >= removed);
        stale_ -= removed;
        if (b.empty()) clear_occ(level, idx);
      }
    }
  }
}

SimTime EventQueue::next_time() const {
  GS_CHECK(!empty());
  if (min_valid_) return min_when_;
  SimTime best = 0;
  bool found = false;
  // Anything live in the current bucket is at or before wheel_now_; all
  // other live entries are strictly after it. So the current bucket wins
  // whenever it is non-empty.
  const Bucket& cur = current_bucket();
  for (std::size_t i = cur_idx_; i < cur.size(); ++i) {
    const Entry& e = cur[i];
    if (stale(e)) continue;
    if (!found || e.when < best) best = e.when;
    found = true;
    if (cur_sorted_) break;  // first live entry is the bucket minimum
  }
  if (!found) {
    const auto now_u = static_cast<std::uint64_t>(wheel_now_);
    for (int level = 0; level < kLevels && !found; ++level) {
      const int start = byte_of(now_u, level) + 1;
      for (int word = start >> 6; word < kOccWords && !found; ++word) {
        std::uint64_t bits = occ_[level][word];
        if (word == (start >> 6) && (start & 63) != 0)
          bits &= ~0ull << (start & 63);
        while (bits != 0 && !found) {
          const int idx = word * 64 + std::countr_zero(bits);
          bits &= bits - 1;
          for (const Entry& e : bucket(level, idx)) {
            if (stale(e)) continue;
            if (!found || e.when < best) best = e.when;
            found = true;
          }
        }
      }
    }
  }
  GS_CHECK(found);
  min_when_ = best;
  min_valid_ = true;
  return best;
}

std::pair<SimTime, std::function<void()>> EventQueue::pop() {
  GS_CHECK(!empty());
  // min_valid_ is deliberately left standing here: if the current bucket is
  // already drained, advance() consumes the cached minimum (typically set by
  // the run loop's next_time() peek) instead of re-scanning the wheel.
  for (;;) {
    if (!cur_sorted_) prepare_current();
    Bucket& cur = current_bucket();
    while (cur_idx_ < cur.size() && stale(cur[cur_idx_])) {
      ++cur_idx_;  // skipped == logically removed; entry erased later
      GS_CHECK(stale_ > 0);
      --stale_;
    }
    if (cur_idx_ < cur.size()) {
      const Entry e = cur[cur_idx_++];
      std::function<void()> fn = std::move(slot_fn_[e.slot]);
      // Moved-from means already empty: bump the generation and recycle the
      // slot directly instead of paying release_slot's callback reset.
      ++slot_gen_[e.slot];
      free_.push_back(e.slot);
      --live_;
      // Refresh the min cache from the cursor: the current bucket is sorted
      // and any live entry in it precedes everything filed ahead of the
      // wheel, so the next live entry here is the global minimum. This keeps
      // the peek-then-pop run loops O(1) on the peek.
      min_valid_ = false;
      if (cur_idx_ < cur.size()) {
        const Entry& n = cur[cur_idx_];
        if (!stale(n)) {
          min_when_ = n.when;
          min_valid_ = true;
        }
      }
      return {e.when, std::move(fn)};
    }
    advance();
  }
}

void EventQueue::clear() {
  for (int level = 0; level < kLevels; ++level) {
    for (int word = 0; word < kOccWords; ++word) {
      std::uint64_t bits = occ_[level][word];
      while (bits != 0) {
        const int idx = word * 64 + std::countr_zero(bits);
        bits &= bits - 1;
        bucket(level, idx).clear();
      }
      occ_[level][word] = 0;
    }
  }
  free_.clear();
  for (std::uint32_t slot = 0; slot < slot_gen_.size(); ++slot)
    release_slot(slot);  // gen bump: every outstanding id goes stale
  live_ = 0;
  stale_ = 0;
  cur_idx_ = 0;
  cur_sorted_ = true;
  min_valid_ = false;
  // wheel_now_ is retained: a cleared queue can keep scheduling forward.
}

}  // namespace gs::sim
