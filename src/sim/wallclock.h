// Wall-clock TimeSource: real elapsed time plus a timer wheel, for running
// GulfStream daemons over a real transport.
//
// now() is microseconds of monotonic (steady_clock) time since construction,
// so SimTime arithmetic and every Params duration carry over unchanged from
// the simulator. Timers reuse the simulator's EventQueue — the same
// (when, seq) total order, lazy cancellation, and slot recycling — but
// nothing here advances time: an external driver (net::EventLoop) calls
// next_deadline() to size its poll timeout and run_due() to fire expired
// timers. WallClock is single-threaded by contract, exactly like Simulator:
// all scheduling and dispatch happen on the loop thread.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>

#include "sim/event_queue.h"
#include "sim/time.h"
#include "sim/time_source.h"

namespace gs::sim {

class WallClock final : public TimeSource {
 public:
  WallClock() : epoch_(std::chrono::steady_clock::now()) {}

  WallClock(const WallClock&) = delete;
  WallClock& operator=(const WallClock&) = delete;

  // Microseconds since construction; never decreases (steady_clock is
  // monotonic, and the last reading is latched as a floor besides).
  [[nodiscard]] SimTime now() const override;

  // Schedules fn at an absolute time. Unlike the simulator, a `when` already
  // in the past is legal — real time moves between computing a deadline and
  // arming it — and fires on the next run_due().
  Timer at(SimTime when, std::function<void()> fn) override;

  // --- Driver interface (net::EventLoop) ----------------------------------

  // Earliest pending deadline, or nullopt when no timer is armed.
  [[nodiscard]] std::optional<SimTime> next_deadline() const;

  // Fires every timer whose deadline has passed, in (when, seq) order.
  // Returns the number of callbacks run. Callbacks may re-arm.
  std::size_t run_due();

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  // Drops every pending timer without running it (shutdown path: nothing
  // may fire into components that are about to be destroyed). Outstanding
  // Timer handles stay safe to cancel.
  void cancel_all() { queue_.clear(); }

  // Installs this clock as the global logger's timestamp source.
  void install_log_clock();

 protected:
  bool cancel_event(EventId id) override { return queue_.cancel(id); }
  // Same past-deadline clamp as at(): a re-armed deadline the wall clock
  // already passed fires on the next run_due() rather than tripping the
  // wheel's ordering checks.
  EventId reschedule_event(EventId id, SimTime when) override {
    return queue_.reschedule(id, std::max(when, now()));
  }

 private:
  EventQueue queue_;
  std::chrono::steady_clock::time_point epoch_;
  mutable SimTime last_now_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace gs::sim
