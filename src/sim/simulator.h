// The discrete-event simulator driving every simulated run.
//
// Single-threaded by design: determinism is the property everything else in
// this repository leans on. Components schedule callbacks through the
// TimeSource seam (`after()` / `at()`) and hold the returned Timer to cancel
// or re-arm (heartbeat suspicion timers re-arm on every arrival).
// run_until() advances simulated time; nothing here touches the wall clock.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "sim/event_queue.h"
#include "sim/time.h"
#include "sim/time_source.h"

namespace gs::sim {

class Simulator final : public TimeSource {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const override { return now_; }

  // Schedules fn at an absolute simulated time (>= now).
  Timer at(SimTime when, std::function<void()> fn) override;

  // Runs events until the queue drains or simulated time would pass
  // `deadline`; time is left at min(deadline, last event time). Returns the
  // number of events executed.
  std::size_t run_until(SimTime deadline);

  // Runs until the queue drains (caller must guarantee termination, e.g. no
  // self-rescheduling periodic timers).
  std::size_t run() { return run_until(std::numeric_limits<SimTime>::max()); }

  // Epoch step for the sharded driver: runs every event with time < `end`
  // (half-open, unlike run_until's inclusive deadline) and leaves now() ==
  // end. Events the barrier exchange injects afterwards land at >= end, so
  // they are never in this window's past.
  std::size_t run_window(SimTime end);

  // Discards every pending event without running it. Teardown only: events
  // own closures (and through them payloads) that must be destroyed on the
  // thread that created them.
  void drop_pending() { queue_.clear(); }

  // Executes at most one event. Returns false if none is pending.
  bool step();

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  // Deadline of the earliest pending event. Requires !idle(). Const peek —
  // the sharded driver's barrier computation uses it to size idle windows
  // without mutating another shard's queue.
  [[nodiscard]] SimTime next_event_time() const { return queue_.next_time(); }

  // Event-core occupancy for the obs health sampler (sim.queue.* gauges).
  [[nodiscard]] std::size_t queue_slots() const { return queue_.slot_count(); }
  [[nodiscard]] std::size_t queue_high_water() const {
    return queue_.high_water();
  }

  // Installs this simulator as the global logger's timestamp source.
  void install_log_clock();

 protected:
  bool cancel_event(EventId id) override;
  EventId reschedule_event(EventId id, SimTime when) override;

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace gs::sim
