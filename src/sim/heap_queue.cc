#include "sim/heap_queue.h"

#include <algorithm>

namespace gs::sim {

namespace {

constexpr std::uint64_t encode_id(std::uint32_t slot, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(gen) << 32) |
         (static_cast<std::uint64_t>(slot) + 1);
}

// Compaction triggers only once the stale population both exceeds a floor
// (so small queues never pay a rebuild) and outnumbers the live entries
// (so the O(heap) rebuild amortizes to O(1) per cancel).
constexpr std::size_t kCompactFloor = 64;

}  // namespace

EventId HeapEventQueue::push(SimTime when, std::function<void()> fn) {
  GS_CHECK(fn != nullptr);
  std::uint32_t slot;
  if (free_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_.back();
    free_.pop_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  heap_.push_back(Entry{when, next_seq_++, slot, s.gen});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  ++live_;
  high_water_ = std::max(high_water_, live_);
  return encode_id(slot, s.gen);
}

bool HeapEventQueue::cancel(EventId id) {
  if (id == 0) return false;
  const auto slot = static_cast<std::uint32_t>((id & 0xFFFF'FFFFull) - 1);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size() || slots_[slot].gen != gen) return false;
  release_slot(slot);  // frees the callback (and its captures) eagerly
  GS_CHECK(live_ > 0);
  --live_;
  maybe_compact();
  return true;
}

EventId HeapEventQueue::reschedule(EventId id, SimTime when) {
  if (id == 0) return 0;
  const auto slot = static_cast<std::uint32_t>((id & 0xFFFF'FFFFull) - 1);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size() || slots_[slot].gen != gen) return 0;
  Slot& s = slots_[slot];
  ++s.gen;  // the old heap entry is now stale; the callback stays in place
  heap_.push_back(Entry{when, next_seq_++, slot, s.gen});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  maybe_compact();
  return encode_id(slot, s.gen);
}

void HeapEventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;
  ++s.gen;
  free_.push_back(slot);
}

void HeapEventQueue::skim_stale() const {
  while (!heap_.empty() && stale(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
  }
}

void HeapEventQueue::maybe_compact() {
  const std::size_t stale_count = heap_.size() - live_;
  if (stale_count < kCompactFloor || stale_count <= live_) return;
  std::erase_if(heap_, [this](const Entry& e) { return stale(e); });
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
}

SimTime HeapEventQueue::next_time() const {
  GS_CHECK(!empty());
  skim_stale();
  return heap_.front().when;
}

void HeapEventQueue::clear() {
  heap_.clear();
  free_.clear();
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot)
    release_slot(slot);  // gen bump: every outstanding id goes stale
  live_ = 0;
}

std::pair<SimTime, std::function<void()>> HeapEventQueue::pop() {
  GS_CHECK(!empty());
  skim_stale();
  GS_CHECK(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  const Entry entry = heap_.back();
  heap_.pop_back();
  std::function<void()> fn = std::move(slots_[entry.slot].fn);
  release_slot(entry.slot);
  --live_;
  return {entry.when, std::move(fn)};
}

}  // namespace gs::sim
