#include "sim/shard.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace gs::sim {

ShardSet::ShardSet(std::vector<Simulator*> shards, SimDuration epoch)
    : sims_(std::move(shards)),
      epoch_(epoch),
      sync_(static_cast<std::ptrdiff_t>(sims_.size()) + 1) {
  GS_CHECK_MSG(!sims_.empty(), "ShardSet needs at least one shard");
  GS_CHECK_MSG(epoch_ > 0, "epoch window must be positive");
  for (const Simulator* sim : sims_) GS_CHECK(sim != nullptr);
  floor_ = sims_[0]->now();
  for (const Simulator* sim : sims_)
    GS_CHECK_MSG(sim->now() == floor_, "shard clocks disagree");
  window_end_ = floor_;

  const std::size_t n = sims_.size();
  mail_.reserve(n * n);
  for (std::size_t i = 0; i < n * n; ++i)
    mail_.push_back(std::make_unique<Mailbox>());
  state_.resize(n);

  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker(i); });
}

ShardSet::~ShardSet() { shutdown(); }

void ShardSet::shutdown() {
  if (down_) return;
  phase_ = Phase::kExit;
  sync_.arrive_and_wait();  // workers observe kExit and return
  for (auto& w : workers_) w.join();
  down_ = true;
}

void ShardSet::worker(std::size_t index) {
  for (;;) {
    sync_.arrive_and_wait();  // main has configured the phase
    switch (phase_) {
      case Phase::kExit:
        return;
      case Phase::kWindow:
        state_[index].events += sims_[index]->run_window(window_end_);
        break;
      case Phase::kCall:
        (*call_)(index);
        break;
    }
    sync_.arrive_and_wait();  // phase complete; main may collect
  }
}

void ShardSet::post(std::size_t from, std::size_t to, SimTime when,
                    std::function<void()> fn) {
  GS_CHECK(from < sims_.size() && to < sims_.size());
  GS_CHECK(fn != nullptr);
  // The conservative condition: never into the running (or any past) window.
  GS_CHECK_MSG(when >= window_end_,
               "cross-shard post targets the current epoch window; "
               "shrink the epoch below the minimum cross-shard latency");
  Post post;
  post.when = when;
  post.from = from;
  post.seq = state_[from].post_seq++;
  post.fn = std::move(fn);
  Mailbox& box = *mail_[from * sims_.size() + to];
  std::lock_guard lock(box.mu);
  box.posts.push_back(std::move(post));
}

bool ShardSet::any_mail() {
  for (const auto& box : mail_) {
    std::lock_guard lock(box->mu);
    if (!box->posts.empty()) return true;
  }
  return false;
}

void ShardSet::drain_mail() {
  const std::size_t n = sims_.size();
  std::vector<Post> posts;
  for (std::size_t to = 0; to < n; ++to) {
    posts.clear();
    for (std::size_t from = 0; from < n; ++from) {
      Mailbox& box = *mail_[from * n + to];
      std::lock_guard lock(box.mu);
      for (Post& post : box.posts) posts.push_back(std::move(post));
      box.posts.clear();
    }
    if (posts.empty()) continue;
    // Injection order — and with it the destination queue's FIFO tiebreak
    // among same-time events — depends only on (when, from, seq), all three
    // functions of simulated traffic, never of thread timing.
    std::sort(posts.begin(), posts.end(), [](const Post& a, const Post& b) {
      if (a.when != b.when) return a.when < b.when;
      if (a.from != b.from) return a.from < b.from;
      return a.seq < b.seq;
    });
    for (Post& post : posts) sims_[to]->at(post.when, std::move(post.fn));
  }
}

std::size_t ShardSet::run_until(SimTime deadline) {
  GS_CHECK_MSG(!down_, "run_until after shutdown");
  floor_ = sims_[0]->now();
  for (const Simulator* sim : sims_)
    GS_CHECK_MSG(sim->now() == floor_, "shard clocks disagree");
  for (ShardState& s : state_) s.events = 0;

  for (;;) {
    if (floor_ >= deadline) break;
    const bool mail = any_mail();
    bool idle = !mail;
    for (const Simulator* sim : sims_) idle = idle && sim->idle();
    if (idle) break;

    // Idle-window fast-forward: with no mail to inject, every window before
    // the earliest pending event would execute nothing — hop over them in
    // one step. The hop stays on the epoch grid and always stops short of
    // the deadline so the final window still runs, leaving every shard's
    // clock exactly where the stepped schedule would (same floors, same
    // windows around actual events, byte-identical traces). Peeking other
    // shards' queues is safe here: the workers are parked at the barrier.
    if (!mail) {
      SimTime next = deadline;
      for (const Simulator* sim : sims_)
        if (!sim->idle()) next = std::min(next, sim->next_event_time());
      if (next > floor_ + epoch_) {
        SimTime jump = floor_ + ((next - floor_) / epoch_) * epoch_;
        if (jump >= deadline)
          jump = floor_ + ((deadline - floor_ - 1) / epoch_) * epoch_;
        floor_ = jump;
      }
    }

    window_end_ = floor_ + epoch_;
    phase_ = Phase::kWindow;
    sync_.arrive_and_wait();  // release the workers into the window
    sync_.arrive_and_wait();  // every shard reached window_end_
    drain_mail();
    floor_ = window_end_;
  }

  std::size_t total = 0;
  for (const ShardState& s : state_) total += s.events;
  return total;
}

void ShardSet::for_each_shard(const std::function<void(std::size_t)>& fn) {
  GS_CHECK_MSG(!down_, "for_each_shard after shutdown");
  GS_CHECK(fn != nullptr);
  call_ = &fn;
  phase_ = Phase::kCall;
  sync_.arrive_and_wait();
  sync_.arrive_and_wait();
  call_ = nullptr;
}

}  // namespace gs::sim
