// The time/timer seam every protocol component schedules against.
//
// GulfStream's daemons never touch a clock directly: they ask a TimeSource
// for `now()` and arm callbacks with `after()`/`at()`, holding the returned
// Timer to cancel or re-arm. Two implementations exist:
//  * sim::Simulator — discrete-event virtual time, the deterministic
//    backend every test, bench, and golden trace runs on;
//  * sim::WallClock — microseconds of real elapsed time, driven by the
//    epoll event loop of the UDP transport backend (see net/udp_transport.h).
// Timestamps are SimTime microseconds in both cases, so Params and all
// protocol arithmetic are backend-agnostic.
#pragma once

#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"
#include "util/check.h"

namespace gs::sim {

class TimeSource;

// Move-only timer handle: cheap, safe to outlive the event (cancel on a
// fired/cancelled timer is a no-op). A default-constructed Timer is inert.
// Move-assigning over a live timer cancels the overwritten event — the
// handle names at most one pending deadline, so silently dropping the old
// id would leak the event to fire. The handle is backend-agnostic: it only
// remembers which TimeSource issued it.
class Timer {
 public:
  Timer() = default;

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  Timer(Timer&& other) noexcept : src_(other.src_), id_(other.id_) {
    other.src_ = nullptr;
    other.id_ = 0;
  }
  Timer& operator=(Timer&& other) noexcept {
    if (this != &other) {
      cancel();
      src_ = other.src_;
      id_ = other.id_;
      other.src_ = nullptr;
      other.id_ = 0;
    }
    return *this;
  }

  // Deliberately does NOT cancel: protocol code keeps handles in containers
  // whose teardown may outlive the backend. Cancel-on-overwrite is safe
  // because assignment happens in live scheduling paths; cancel-on-destroy
  // is not.
  ~Timer() = default;

  // True if the timer was still pending and is now cancelled.
  bool cancel();

  // Moves a still-pending timer to a new absolute deadline in place: the
  // backend keeps the callback (no allocation, no std::function churn), and
  // ordering is exactly as if the timer had been cancelled and re-armed.
  // Returns false — leaving the handle disarmed — if the timer already
  // fired or was cancelled; the caller re-arms with at()/after() then.
  bool rearm(SimTime when);

  // rearm() with a relative delay (>= 0) against the issuing backend's now().
  bool rearm_after(SimDuration delay);

  [[nodiscard]] bool armed() const { return src_ != nullptr && id_ != 0; }

 private:
  friend class TimeSource;
  Timer(TimeSource* src, EventId id) : src_(src), id_(id) {}

  TimeSource* src_ = nullptr;
  EventId id_ = 0;
};

class TimeSource {
 public:
  virtual ~TimeSource() = default;

  // Current time in microseconds. Monotonically non-decreasing.
  [[nodiscard]] virtual SimTime now() const = 0;

  // Schedules fn at an absolute time (>= now).
  virtual Timer at(SimTime when, std::function<void()> fn) = 0;

  // Schedules fn after a relative delay (>= 0).
  Timer after(SimDuration delay, std::function<void()> fn) {
    GS_CHECK(delay >= 0);
    return at(now() + delay, std::move(fn));
  }

 protected:
  // How Timer reaches back into its issuing backend.
  friend class Timer;
  virtual bool cancel_event(EventId id) = 0;
  // In-place deadline move for Timer::rearm(). Returns the event's new id,
  // or 0 when the event is no longer pending (or the backend does not
  // support rescheduling — the conservative default).
  virtual EventId reschedule_event(EventId id, SimTime when) {
    (void)id;
    (void)when;
    return 0;
  }
  [[nodiscard]] Timer make_timer(EventId id) { return Timer(this, id); }
};

inline bool Timer::cancel() {
  if (src_ == nullptr || id_ == 0) return false;
  const bool was_pending = src_->cancel_event(id_);
  id_ = 0;
  return was_pending;
}

inline bool Timer::rearm(SimTime when) {
  if (src_ == nullptr || id_ == 0) return false;
  id_ = src_->reschedule_event(id_, when);  // 0 on a dead event: disarmed
  return id_ != 0;
}

inline bool Timer::rearm_after(SimDuration delay) {
  if (src_ == nullptr || id_ == 0) return false;
  GS_CHECK(delay >= 0);
  return rearm(src_->now() + delay);
}

}  // namespace gs::sim

namespace gs {
// The seam names the design docs use: gs::TimeSource is the interface the
// daemons are wired against, whichever backend implements it.
using TimeSource = sim::TimeSource;
}  // namespace gs
