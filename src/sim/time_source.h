// The time/timer seam every protocol component schedules against.
//
// GulfStream's daemons never touch a clock directly: they ask a TimeSource
// for `now()` and arm callbacks with `after()`/`at()`, holding the returned
// Timer to cancel or re-arm. Two implementations exist:
//  * sim::Simulator — discrete-event virtual time, the deterministic
//    backend every test, bench, and golden trace runs on;
//  * sim::WallClock — microseconds of real elapsed time, driven by the
//    epoll event loop of the UDP transport backend (see net/udp_transport.h).
// Timestamps are SimTime microseconds in both cases, so Params and all
// protocol arithmetic are backend-agnostic.
#pragma once

#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"
#include "util/check.h"

namespace gs::sim {

class TimeSource;

// RAII-free timer handle: copyable, cheap, safe to outlive the event (cancel
// on a fired/cancelled timer is a no-op). A default-constructed Timer is
// inert. The handle is backend-agnostic: it only remembers which TimeSource
// issued it.
class Timer {
 public:
  Timer() = default;

  // True if the timer was still pending and is now cancelled.
  bool cancel();

  [[nodiscard]] bool armed() const { return src_ != nullptr && id_ != 0; }

 private:
  friend class TimeSource;
  Timer(TimeSource* src, EventId id) : src_(src), id_(id) {}

  TimeSource* src_ = nullptr;
  EventId id_ = 0;
};

class TimeSource {
 public:
  virtual ~TimeSource() = default;

  // Current time in microseconds. Monotonically non-decreasing.
  [[nodiscard]] virtual SimTime now() const = 0;

  // Schedules fn at an absolute time (>= now).
  virtual Timer at(SimTime when, std::function<void()> fn) = 0;

  // Schedules fn after a relative delay (>= 0).
  Timer after(SimDuration delay, std::function<void()> fn) {
    GS_CHECK(delay >= 0);
    return at(now() + delay, std::move(fn));
  }

 protected:
  // How Timer reaches back into its issuing backend.
  friend class Timer;
  virtual bool cancel_event(EventId id) = 0;
  [[nodiscard]] Timer make_timer(EventId id) { return Timer(this, id); }
};

inline bool Timer::cancel() {
  if (src_ == nullptr || id_ == 0) return false;
  const bool was_pending = src_->cancel_event(id_);
  id_ = 0;
  return was_pending;
}

}  // namespace gs::sim

namespace gs {
// The seam names the design docs use: gs::TimeSource is the interface the
// daemons are wired against, whichever backend implements it.
using TimeSource = sim::TimeSource;
}  // namespace gs
