#include "sim/simulator.h"

#include "util/check.h"
#include "util/logging.h"

namespace gs::sim {

bool Timer::cancel() {
  if (sim_ == nullptr || id_ == 0) return false;
  const bool was_pending = sim_->queue_.cancel(id_);
  id_ = 0;
  return was_pending;
}

bool Timer::armed() const {
  // A timer is "armed" until cancelled or until its simulator fires it; we
  // approximate the latter by asking the queue (cancel of a fired event
  // returns false, so armed() can only over-report between fire and the
  // next cancel() — callers treat it as a hint).
  return sim_ != nullptr && id_ != 0;
}

Timer Simulator::at(SimTime when, std::function<void()> fn) {
  GS_CHECK_MSG(when >= now_, "cannot schedule in the past");
  const EventId id = queue_.push(when, std::move(fn));
  return Timer(this, id);
}

Timer Simulator::after(SimDuration delay, std::function<void()> fn) {
  GS_CHECK(delay >= 0);
  return at(now_ + delay, std::move(fn));
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    const SimTime next = queue_.next_time();
    if (next > deadline) break;
    auto [when, fn] = queue_.pop();
    now_ = when;
    fn();
    ++executed_;
    ++n;
  }
  if (now_ < deadline && deadline != std::numeric_limits<SimTime>::max())
    now_ = deadline;
  return n;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [when, fn] = queue_.pop();
  now_ = when;
  fn();
  ++executed_;
  return true;
}

void Simulator::install_log_clock() {
  util::Logger::instance().set_clock([this] { return now_; });
}

}  // namespace gs::sim
