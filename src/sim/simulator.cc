#include "sim/simulator.h"

#include "util/check.h"
#include "util/logging.h"

namespace gs::sim {

Timer Simulator::at(SimTime when, std::function<void()> fn) {
  GS_CHECK_MSG(when >= now_, "cannot schedule in the past");
  const EventId id = queue_.push(when, std::move(fn));
  return make_timer(id);
}

bool Simulator::cancel_event(EventId id) { return queue_.cancel(id); }

EventId Simulator::reschedule_event(EventId id, SimTime when) {
  GS_CHECK_MSG(when >= now_, "cannot reschedule into the past");
  return queue_.reschedule(id, when);
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    const SimTime next = queue_.next_time();
    if (next > deadline) break;
    auto [when, fn] = queue_.pop();
    now_ = when;
    fn();
    ++executed_;
    ++n;
  }
  if (now_ < deadline && deadline != std::numeric_limits<SimTime>::max())
    now_ = deadline;
  return n;
}

std::size_t Simulator::run_window(SimTime end) {
  GS_CHECK_MSG(end >= now_, "epoch window ends in the past");
  std::size_t n = 0;
  while (!queue_.empty() && queue_.next_time() < end) {
    auto [when, fn] = queue_.pop();
    now_ = when;
    fn();
    ++executed_;
    ++n;
  }
  now_ = end;
  return n;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [when, fn] = queue_.pop();
  now_ = when;
  fn();
  ++executed_;
  return true;
}

void Simulator::install_log_clock() {
  util::Logger::instance().set_clock([this] { return now_; });
}

}  // namespace gs::sim
