// Simulated time.
//
// All protocol timing (beacon phases, heartbeat periods, stabilization
// windows) is expressed in SimTime/SimDuration — integer microseconds — so
// comparisons are exact and runs are reproducible. Helpers convert to/from
// the seconds the paper quotes (T_b = 5/10/20 s, etc.).
#pragma once

#include <concepts>
#include <cstdint>

namespace gs::sim {

// Microseconds since simulation start.
using SimTime = std::int64_t;
// Microsecond interval.
using SimDuration = std::int64_t;

constexpr SimDuration kMicrosecond = 1;
constexpr SimDuration kMillisecond = 1000;
constexpr SimDuration kSecond = 1'000'000;

constexpr SimDuration microseconds(std::int64_t n) { return n; }
constexpr SimDuration milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr SimDuration seconds(std::integral auto n) {
  return static_cast<SimDuration>(n) * kSecond;
}
constexpr SimDuration seconds(std::floating_point auto s) {
  return static_cast<SimDuration>(static_cast<double>(s) *
                                  static_cast<double>(kSecond));
}

constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

}  // namespace gs::sim
