// Pending-event set for the discrete-event simulator.
//
// A binary heap keyed on (time, sequence). The sequence number makes
// ordering of same-timestamp events stable (FIFO in scheduling order), which
// is what keeps whole-farm runs bit-for-bit reproducible. Cancellation is
// lazy: cancelled entries stay in the heap and are skipped on pop, so
// cancel() is O(1) — important because every heartbeat arrival cancels and
// re-arms a suspicion timer.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/time.h"
#include "util/check.h"

namespace gs::sim {

using EventId = std::uint64_t;

class EventQueue {
 public:
  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules fn at the given absolute time; returns a handle usable with
  // cancel(). fn must be non-null.
  EventId push(SimTime when, std::function<void()> fn);

  // Cancels a pending event. Returns true if the event was still pending.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  // Time of the earliest pending (non-cancelled) event. Requires !empty().
  [[nodiscard]] SimTime next_time();

  // Removes and returns the earliest pending event. Requires !empty().
  std::pair<SimTime, std::function<void()>> pop();

 private:
  enum class State : std::uint8_t { kPending, kFired, kCancelled };

  struct Entry {
    SimTime when;
    EventId id;
    std::function<void()> fn;

    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  // Pops cancelled entries off the heap top until a pending one surfaces.
  void skim_cancelled();

  std::vector<Entry> heap_;
  std::vector<State> states_;  // indexed by EventId - 1
  std::size_t live_ = 0;
};

}  // namespace gs::sim
