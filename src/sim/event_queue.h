// Pending-event set for the discrete-event simulator: a hierarchical timing
// wheel that preserves the exact (when, seq) total order of the binary heap
// it replaced (kept as sim/heap_queue.h for differential testing).
//
// Layout: 8 levels x 256 buckets — one level per byte of the 64-bit
// microsecond timestamp, so the wheel spans all of SimTime with no separate
// overflow list. An event is filed by the highest byte in which its deadline
// differs from the wheel's current position (`wheel_now_`): near events land
// at level 0 (1 us tick, one bucket per distinct microsecond mod 256),
// farther ones at coarser levels (level L has a 256^L-us tick). Advancing to
// the next deadline cascades exactly one coarse bucket down — each entry is
// refiled directly against the new position, so an event is touched at most
// once per level between push and pop (<= 8 times, ~2-3 in practice).
//
// Determinism: the sequence number is a monotonic push counter, so ordering
// of same-timestamp events is stable (FIFO in scheduling order) — which is
// what keeps whole-farm runs bit-for-bit reproducible. The wheel maintains
// the invariant that every live entry at or below the wheel position sits in
// the *current* level-0 bucket; that bucket is sorted by (when, seq) and
// drained through a cursor, so pops come out in exactly the heap's order.
// Entries cascading into a bucket can interleave in seq with entries pushed
// there directly, hence the sort; appends that already respect the tail
// order (the common case) keep the bucket sorted without re-sorting.
//
// Cancellation is lazy and O(1), as before: a cancelled event's entry stays
// in its bucket and is skipped/purged later. Storage is bounded under
// cancel/re-arm churn by the same two mechanisms as the heap:
//  * callback slots are generation-tagged and recycled through a free list,
//    so the slot pool peaks at the maximum number of *concurrently* pending
//    events (the callback — and whatever its closure pins — is released
//    eagerly at cancel time);
//  * when stale (cancelled/superseded) entries outnumber live ones, every
//    bucket is swept in place. Neither sweep nor cascade can change pop
//    order: (when, seq) is a total order and entry keys are never rewritten.
//
// reschedule() moves a live event to a new deadline without releasing its
// callback: the slot keeps its std::function, only the generation bumps and
// a fresh (when, seq) entry is filed. Ordering is exactly as if the event
// had been cancelled and re-pushed — this is the allocation-free heartbeat
// re-arm fast path (sim::Timer::rearm).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/time.h"
#include "util/check.h"

namespace gs::sim {

// Encodes (slot generation << 32 | slot index + 1); 0 is never a valid id,
// which keeps a default-constructed Timer inert.
using EventId = std::uint64_t;

class EventQueue {
 public:
  EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules fn at the given absolute time (>= 0); returns a handle usable
  // with cancel()/reschedule(). fn must be non-null.
  EventId push(SimTime when, std::function<void()> fn);

  // Cancels a pending event. Returns true if the event was still pending.
  bool cancel(EventId id);

  // Moves a pending event to a new deadline (>= 0), keeping its callback in
  // place — no std::function is destroyed, constructed, or moved. Ordering
  // is exactly as if the event had been cancelled and re-pushed: the move
  // consumes a fresh sequence number. Returns the new id, or 0 if `id` was
  // no longer pending (fired or cancelled); the old id is dead either way.
  EventId reschedule(EventId id, SimTime when);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  // Time of the earliest pending (non-cancelled) event. Requires !empty().
  // Const peek: the result is memoized, so back-to-back peeks are O(1); the
  // wheel itself is not restructured (see skim()).
  [[nodiscard]] SimTime next_time() const;

  // Explicitly compacts the pop cursor's bucket (dropping popped and stale
  // entries and restoring sorted order). pop() does this implicitly; exposed
  // so callers that mostly peek — the shard barrier — can pay the cleanup
  // cost at a chosen point rather than inside a const scan.
  void skim() { prepare_current(); }

  // Removes and returns the earliest pending event. Requires !empty().
  std::pair<SimTime, std::function<void()>> pop();

  // Drops every pending event without running it, releasing the callbacks
  // (and whatever their closures pin) immediately. Outstanding EventIds are
  // invalidated by generation bump, so a later cancel() on them is a safe
  // no-op — this is the wall-clock backend's shutdown path.
  void clear();

  // --- Introspection (tests/benches/obs) ----------------------------------
  // Size of the slot pool: peaks at the high-water mark of concurrently
  // pending events, independent of how many were ever pushed.
  [[nodiscard]] std::size_t slot_count() const { return slot_gen_.size(); }
  // Wheel entries, live + stale; bounded at ~2x live by the stale sweep.
  [[nodiscard]] std::size_t entry_count() const { return live_ + stale_; }
  // Historical name from the heap implementation; same bound, kept so churn
  // tests read identically against both implementations.
  [[nodiscard]] std::size_t heap_size() const { return entry_count(); }
  // Maximum number of concurrently live events ever observed.
  [[nodiscard]] std::size_t high_water() const { return high_water_; }

 private:
  static constexpr int kLevels = 8;       // one per timestamp byte
  static constexpr int kLevelBits = 8;    // 256-way fan-out per level
  static constexpr int kBuckets = 1 << kLevelBits;
  static constexpr int kOccWords = kBuckets / 64;

  // An entry does not own the callback — it names a slot plus the generation
  // it was filed under. An entry whose generation no longer matches its slot
  // is stale (the event fired, was cancelled or rescheduled, and the slot
  // may since have been reused).
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  using Bucket = std::vector<Entry>;

  [[nodiscard]] bool stale(const Entry& e) const {
    return slot_gen_[e.slot] != e.gen;
  }
  [[nodiscard]] static int byte_of(std::uint64_t t, int level) {
    return static_cast<int>((t >> (level * kLevelBits)) & (kBuckets - 1));
  }
  [[nodiscard]] Bucket& bucket(int level, int idx) {
    return buckets_[static_cast<std::size_t>(level * kBuckets + idx)];
  }
  [[nodiscard]] const Bucket& bucket(int level, int idx) const {
    return buckets_[static_cast<std::size_t>(level * kBuckets + idx)];
  }
  [[nodiscard]] Bucket& current_bucket() {
    return bucket(0, byte_of(static_cast<std::uint64_t>(wheel_now_), 0));
  }
  [[nodiscard]] const Bucket& current_bucket() const {
    return bucket(0, byte_of(static_cast<std::uint64_t>(wheel_now_), 0));
  }
  void set_occ(int level, int idx) {
    occ_[level][idx >> 6] |= 1ull << (idx & 63);
  }
  void clear_occ(int level, int idx) {
    occ_[level][idx >> 6] &= ~(1ull << (idx & 63));
  }

  // Files an entry into the bucket its deadline selects relative to
  // wheel_now_ (past deadlines clamp into the current bucket).
  void file(const Entry& e);
  // Releases a slot back to the free list, invalidating outstanding ids and
  // wheel entries that reference the old generation.
  void release_slot(std::uint32_t slot);
  // Compacts the current bucket: drops the popped prefix and stale entries,
  // restores (when, seq) sorted order, resets the cursor.
  void prepare_current();
  // Moves the wheel to the next live deadline: retires the drained current
  // bucket, purges buckets the move laps past (provably all-stale), and
  // cascades the one coarse bucket covering the new position.
  void advance();
  // Earliest live deadline strictly ahead of the current bucket. Purges
  // all-stale buckets it visits. Requires live_ > 0.
  SimTime find_min_live();
  // Drops a bucket whose entries are all stale (checked).
  void purge_bucket(int level, int idx);
  // Sweeps stale entries out of every bucket once they dominate.
  void maybe_compact();

  std::vector<Bucket> buckets_;  // kLevels * kBuckets, level-major
  Bucket cascade_scratch_;       // reused by advance(); capacity circulates
  std::uint64_t occ_[kLevels][kOccWords] = {};
  SimTime wheel_now_ = 0;    // time of the bucket the pop cursor sits in
  std::size_t cur_idx_ = 0;  // drain cursor into the current bucket
  bool cur_sorted_ = true;   // current bucket sorted by (when, seq)?

  // The slot pool, split into parallel arrays so the stale check — the one
  // read every entry visit makes — walks a dense 4-byte-stride array that
  // stays cache-resident, instead of dragging the 32-byte callbacks through
  // the cache with it. Index i across the three arrays is one slot: the
  // generation (bumped on every release: fire/cancel/reschedule), the
  // current deadline (for min-cache invalidation), and the callback.
  std::vector<std::uint32_t> slot_gen_;
  std::vector<SimTime> slot_when_;
  std::vector<std::function<void()>> slot_fn_;
  std::vector<std::uint32_t> free_;  // recyclable slot indices
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;   // pending events
  std::size_t stale_ = 0;  // dead entries still physically in buckets
  std::size_t high_water_ = 0;

  mutable SimTime min_when_ = 0;  // memoized next_time()
  mutable bool min_valid_ = false;
};

}  // namespace gs::sim
