// Pending-event set for the discrete-event simulator.
//
// A binary heap keyed on (time, sequence). The sequence number is a
// monotonic push counter, so ordering of same-timestamp events is stable
// (FIFO in scheduling order) — which is what keeps whole-farm runs
// bit-for-bit reproducible. Cancellation is lazy: a cancelled event's heap
// entry stays behind and is skipped on pop, so cancel() is O(1) — important
// because every heartbeat arrival cancels and re-arms a suspicion timer.
//
// Storage is bounded under that cancel/re-arm churn by two mechanisms:
//  * callback slots are generation-tagged and recycled through a free list,
//    so the slot pool peaks at the maximum number of *concurrently* pending
//    events instead of growing by one per event ever pushed (the callback —
//    and whatever its closure pins — is released eagerly at cancel time);
//  * when stale (cancelled/superseded) heap entries outnumber live ones the
//    heap is compacted and rebuilt. Rebuilding cannot change pop order:
//    (when, seq) is a total order, so any heap layout pops identically.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/time.h"
#include "util/check.h"

namespace gs::sim {

// Encodes (slot generation << 32 | slot index + 1); 0 is never a valid id,
// which keeps a default-constructed Timer inert.
using EventId = std::uint64_t;

class EventQueue {
 public:
  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules fn at the given absolute time; returns a handle usable with
  // cancel(). fn must be non-null.
  EventId push(SimTime when, std::function<void()> fn);

  // Cancels a pending event. Returns true if the event was still pending.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  // Time of the earliest pending (non-cancelled) event. Requires !empty().
  [[nodiscard]] SimTime next_time();

  // Removes and returns the earliest pending event. Requires !empty().
  std::pair<SimTime, std::function<void()>> pop();

  // Drops every pending event without running it, releasing the callbacks
  // (and whatever their closures pin) immediately. Outstanding EventIds are
  // invalidated by generation bump, so a later cancel() on them is a safe
  // no-op — this is the wall-clock backend's shutdown path.
  void clear();

  // --- Introspection (tests/benches) -------------------------------------
  // Size of the slot pool: peaks at the high-water mark of concurrently
  // pending events, independent of how many were ever pushed.
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }
  // Heap entries, live + stale; bounded at ~2x live by compaction.
  [[nodiscard]] std::size_t heap_size() const { return heap_.size(); }

 private:
  // A heap entry does not own the callback — it names a slot plus the
  // generation it was pushed under. An entry whose generation no longer
  // matches its slot is stale (the event fired or was cancelled, and the
  // slot may since have been reused).
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;

    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  struct Slot {
    std::uint32_t gen = 0;  // bumped on every release (fire or cancel)
    std::function<void()> fn;
  };

  [[nodiscard]] bool stale(const Entry& e) const {
    return slots_[e.slot].gen != e.gen;
  }
  // Releases a slot back to the free list, invalidating outstanding ids and
  // heap entries that reference the old generation.
  void release_slot(std::uint32_t slot);
  // Pops stale entries off the heap top until a live one surfaces.
  void skim_stale();
  // Drops every stale entry and rebuilds the heap once they dominate.
  void maybe_compact();

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  // recyclable slot indices
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace gs::sim
