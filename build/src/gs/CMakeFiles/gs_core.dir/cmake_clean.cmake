file(REMOVE_RECURSE
  "CMakeFiles/gs_core.dir/adapter_protocol.cc.o"
  "CMakeFiles/gs_core.dir/adapter_protocol.cc.o.d"
  "CMakeFiles/gs_core.dir/amg.cc.o"
  "CMakeFiles/gs_core.dir/amg.cc.o.d"
  "CMakeFiles/gs_core.dir/central.cc.o"
  "CMakeFiles/gs_core.dir/central.cc.o.d"
  "CMakeFiles/gs_core.dir/daemon.cc.o"
  "CMakeFiles/gs_core.dir/daemon.cc.o.d"
  "CMakeFiles/gs_core.dir/fd.cc.o"
  "CMakeFiles/gs_core.dir/fd.cc.o.d"
  "CMakeFiles/gs_core.dir/fd_heartbeat.cc.o"
  "CMakeFiles/gs_core.dir/fd_heartbeat.cc.o.d"
  "CMakeFiles/gs_core.dir/fd_randping.cc.o"
  "CMakeFiles/gs_core.dir/fd_randping.cc.o.d"
  "CMakeFiles/gs_core.dir/messages.cc.o"
  "CMakeFiles/gs_core.dir/messages.cc.o.d"
  "libgs_core.a"
  "libgs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
