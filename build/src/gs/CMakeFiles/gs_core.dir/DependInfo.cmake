
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gs/adapter_protocol.cc" "src/gs/CMakeFiles/gs_core.dir/adapter_protocol.cc.o" "gcc" "src/gs/CMakeFiles/gs_core.dir/adapter_protocol.cc.o.d"
  "/root/repo/src/gs/amg.cc" "src/gs/CMakeFiles/gs_core.dir/amg.cc.o" "gcc" "src/gs/CMakeFiles/gs_core.dir/amg.cc.o.d"
  "/root/repo/src/gs/central.cc" "src/gs/CMakeFiles/gs_core.dir/central.cc.o" "gcc" "src/gs/CMakeFiles/gs_core.dir/central.cc.o.d"
  "/root/repo/src/gs/daemon.cc" "src/gs/CMakeFiles/gs_core.dir/daemon.cc.o" "gcc" "src/gs/CMakeFiles/gs_core.dir/daemon.cc.o.d"
  "/root/repo/src/gs/fd.cc" "src/gs/CMakeFiles/gs_core.dir/fd.cc.o" "gcc" "src/gs/CMakeFiles/gs_core.dir/fd.cc.o.d"
  "/root/repo/src/gs/fd_heartbeat.cc" "src/gs/CMakeFiles/gs_core.dir/fd_heartbeat.cc.o" "gcc" "src/gs/CMakeFiles/gs_core.dir/fd_heartbeat.cc.o.d"
  "/root/repo/src/gs/fd_randping.cc" "src/gs/CMakeFiles/gs_core.dir/fd_randping.cc.o" "gcc" "src/gs/CMakeFiles/gs_core.dir/fd_randping.cc.o.d"
  "/root/repo/src/gs/messages.cc" "src/gs/CMakeFiles/gs_core.dir/messages.cc.o" "gcc" "src/gs/CMakeFiles/gs_core.dir/messages.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/gs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/gs_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/gs_config.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
