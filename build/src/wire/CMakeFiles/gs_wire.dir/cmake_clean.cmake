file(REMOVE_RECURSE
  "CMakeFiles/gs_wire.dir/buffer.cc.o"
  "CMakeFiles/gs_wire.dir/buffer.cc.o.d"
  "CMakeFiles/gs_wire.dir/checksum.cc.o"
  "CMakeFiles/gs_wire.dir/checksum.cc.o.d"
  "CMakeFiles/gs_wire.dir/frame.cc.o"
  "CMakeFiles/gs_wire.dir/frame.cc.o.d"
  "libgs_wire.a"
  "libgs_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
