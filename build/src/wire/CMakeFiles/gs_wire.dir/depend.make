# Empty dependencies file for gs_wire.
# This may be replaced when dependencies are built.
