file(REMOVE_RECURSE
  "libgs_wire.a"
)
