file(REMOVE_RECURSE
  "libgs_farm.a"
)
