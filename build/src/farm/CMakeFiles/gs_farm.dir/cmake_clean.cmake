file(REMOVE_RECURSE
  "CMakeFiles/gs_farm.dir/farm.cc.o"
  "CMakeFiles/gs_farm.dir/farm.cc.o.d"
  "CMakeFiles/gs_farm.dir/scenario.cc.o"
  "CMakeFiles/gs_farm.dir/scenario.cc.o.d"
  "CMakeFiles/gs_farm.dir/script.cc.o"
  "CMakeFiles/gs_farm.dir/script.cc.o.d"
  "CMakeFiles/gs_farm.dir/spec.cc.o"
  "CMakeFiles/gs_farm.dir/spec.cc.o.d"
  "libgs_farm.a"
  "libgs_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
