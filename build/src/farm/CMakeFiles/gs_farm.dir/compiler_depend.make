# Empty compiler generated dependencies file for gs_farm.
# This may be replaced when dependencies are built.
