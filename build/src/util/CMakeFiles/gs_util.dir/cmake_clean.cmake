file(REMOVE_RECURSE
  "CMakeFiles/gs_util.dir/flags.cc.o"
  "CMakeFiles/gs_util.dir/flags.cc.o.d"
  "CMakeFiles/gs_util.dir/ip.cc.o"
  "CMakeFiles/gs_util.dir/ip.cc.o.d"
  "CMakeFiles/gs_util.dir/logging.cc.o"
  "CMakeFiles/gs_util.dir/logging.cc.o.d"
  "CMakeFiles/gs_util.dir/rng.cc.o"
  "CMakeFiles/gs_util.dir/rng.cc.o.d"
  "CMakeFiles/gs_util.dir/stats.cc.o"
  "CMakeFiles/gs_util.dir/stats.cc.o.d"
  "CMakeFiles/gs_util.dir/thread_pool.cc.o"
  "CMakeFiles/gs_util.dir/thread_pool.cc.o.d"
  "libgs_util.a"
  "libgs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
