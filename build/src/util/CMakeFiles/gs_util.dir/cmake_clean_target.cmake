file(REMOVE_RECURSE
  "libgs_util.a"
)
