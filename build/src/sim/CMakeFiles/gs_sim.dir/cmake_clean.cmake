file(REMOVE_RECURSE
  "CMakeFiles/gs_sim.dir/event_queue.cc.o"
  "CMakeFiles/gs_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/gs_sim.dir/simulator.cc.o"
  "CMakeFiles/gs_sim.dir/simulator.cc.o.d"
  "libgs_sim.a"
  "libgs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
