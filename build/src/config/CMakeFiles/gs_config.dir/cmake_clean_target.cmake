file(REMOVE_RECURSE
  "libgs_config.a"
)
