file(REMOVE_RECURSE
  "CMakeFiles/gs_config.dir/configdb.cc.o"
  "CMakeFiles/gs_config.dir/configdb.cc.o.d"
  "CMakeFiles/gs_config.dir/verifier.cc.o"
  "CMakeFiles/gs_config.dir/verifier.cc.o.d"
  "libgs_config.a"
  "libgs_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
