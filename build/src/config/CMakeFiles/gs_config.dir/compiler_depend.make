# Empty compiler generated dependencies file for gs_config.
# This may be replaced when dependencies are built.
