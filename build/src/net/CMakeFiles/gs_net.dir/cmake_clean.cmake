file(REMOVE_RECURSE
  "CMakeFiles/gs_net.dir/console.cc.o"
  "CMakeFiles/gs_net.dir/console.cc.o.d"
  "CMakeFiles/gs_net.dir/fabric.cc.o"
  "CMakeFiles/gs_net.dir/fabric.cc.o.d"
  "libgs_net.a"
  "libgs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
