# Empty compiler generated dependencies file for failure_monitoring.
# This may be replaced when dependencies are built.
