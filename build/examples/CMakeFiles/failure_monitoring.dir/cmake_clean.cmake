file(REMOVE_RECURSE
  "CMakeFiles/failure_monitoring.dir/failure_monitoring.cpp.o"
  "CMakeFiles/failure_monitoring.dir/failure_monitoring.cpp.o.d"
  "failure_monitoring"
  "failure_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
