file(REMOVE_RECURSE
  "CMakeFiles/domain_reconfiguration.dir/domain_reconfiguration.cpp.o"
  "CMakeFiles/domain_reconfiguration.dir/domain_reconfiguration.cpp.o.d"
  "domain_reconfiguration"
  "domain_reconfiguration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domain_reconfiguration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
