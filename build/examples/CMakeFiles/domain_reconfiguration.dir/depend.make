# Empty dependencies file for domain_reconfiguration.
# This may be replaced when dependencies are built.
