file(REMOVE_RECURSE
  "CMakeFiles/scripted_scenario.dir/scripted_scenario.cpp.o"
  "CMakeFiles/scripted_scenario.dir/scripted_scenario.cpp.o.d"
  "scripted_scenario"
  "scripted_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scripted_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
