# Empty dependencies file for scripted_scenario.
# This may be replaced when dependencies are built.
