# Empty dependencies file for oceano_autoscaler.
# This may be replaced when dependencies are built.
