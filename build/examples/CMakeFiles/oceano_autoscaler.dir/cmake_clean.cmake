file(REMOVE_RECURSE
  "CMakeFiles/oceano_autoscaler.dir/oceano_autoscaler.cpp.o"
  "CMakeFiles/oceano_autoscaler.dir/oceano_autoscaler.cpp.o.d"
  "oceano_autoscaler"
  "oceano_autoscaler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oceano_autoscaler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
