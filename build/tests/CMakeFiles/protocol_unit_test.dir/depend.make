# Empty dependencies file for protocol_unit_test.
# This may be replaced when dependencies are built.
