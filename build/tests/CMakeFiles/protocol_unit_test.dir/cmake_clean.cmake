file(REMOVE_RECURSE
  "CMakeFiles/protocol_unit_test.dir/protocol_unit_test.cc.o"
  "CMakeFiles/protocol_unit_test.dir/protocol_unit_test.cc.o.d"
  "protocol_unit_test"
  "protocol_unit_test.pdb"
  "protocol_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
