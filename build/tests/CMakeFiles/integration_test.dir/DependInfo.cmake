
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/farm/CMakeFiles/gs_farm.dir/DependInfo.cmake"
  "/root/repo/build/src/gs/CMakeFiles/gs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/gs_config.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/gs_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
