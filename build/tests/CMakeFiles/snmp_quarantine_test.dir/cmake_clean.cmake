file(REMOVE_RECURSE
  "CMakeFiles/snmp_quarantine_test.dir/snmp_quarantine_test.cc.o"
  "CMakeFiles/snmp_quarantine_test.dir/snmp_quarantine_test.cc.o.d"
  "snmp_quarantine_test"
  "snmp_quarantine_test.pdb"
  "snmp_quarantine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snmp_quarantine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
