# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/messages_test[1]_include.cmake")
include("/root/repo/build/tests/amg_test[1]_include.cmake")
include("/root/repo/build/tests/fd_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
include("/root/repo/build/tests/central_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/daemon_test[1]_include.cmake")
include("/root/repo/build/tests/farm_test[1]_include.cmake")
include("/root/repo/build/tests/snmp_quarantine_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_unit_test[1]_include.cmake")
include("/root/repo/build/tests/script_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/model_property_test[1]_include.cmake")
