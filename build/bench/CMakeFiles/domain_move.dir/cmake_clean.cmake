file(REMOVE_RECURSE
  "CMakeFiles/domain_move.dir/domain_move.cc.o"
  "CMakeFiles/domain_move.dir/domain_move.cc.o.d"
  "domain_move"
  "domain_move.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domain_move.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
