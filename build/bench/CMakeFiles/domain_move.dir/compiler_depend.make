# Empty compiler generated dependencies file for domain_move.
# This may be replaced when dependencies are built.
