# Empty compiler generated dependencies file for detection_tradeoff.
# This may be replaced when dependencies are built.
