# Empty compiler generated dependencies file for gsc_load.
# This may be replaced when dependencies are built.
