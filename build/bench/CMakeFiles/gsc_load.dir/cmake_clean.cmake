file(REMOVE_RECURSE
  "CMakeFiles/gsc_load.dir/gsc_load.cc.o"
  "CMakeFiles/gsc_load.dir/gsc_load.cc.o.d"
  "gsc_load"
  "gsc_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsc_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
