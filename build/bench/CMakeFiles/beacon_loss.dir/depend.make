# Empty dependencies file for beacon_loss.
# This may be replaced when dependencies are built.
