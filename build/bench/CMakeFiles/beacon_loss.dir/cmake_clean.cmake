file(REMOVE_RECURSE
  "CMakeFiles/beacon_loss.dir/beacon_loss.cc.o"
  "CMakeFiles/beacon_loss.dir/beacon_loss.cc.o.d"
  "beacon_loss"
  "beacon_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beacon_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
