# Empty compiler generated dependencies file for fig5_stabilization.
# This may be replaced when dependencies are built.
