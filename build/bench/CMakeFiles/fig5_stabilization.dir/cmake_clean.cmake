file(REMOVE_RECURSE
  "CMakeFiles/fig5_stabilization.dir/fig5_stabilization.cc.o"
  "CMakeFiles/fig5_stabilization.dir/fig5_stabilization.cc.o.d"
  "fig5_stabilization"
  "fig5_stabilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_stabilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
