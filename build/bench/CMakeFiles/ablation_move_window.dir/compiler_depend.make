# Empty compiler generated dependencies file for ablation_move_window.
# This may be replaced when dependencies are built.
