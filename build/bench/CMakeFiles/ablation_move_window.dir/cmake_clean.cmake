file(REMOVE_RECURSE
  "CMakeFiles/ablation_move_window.dir/ablation_move_window.cc.o"
  "CMakeFiles/ablation_move_window.dir/ablation_move_window.cc.o.d"
  "ablation_move_window"
  "ablation_move_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_move_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
