# Empty compiler generated dependencies file for fd_scaling.
# This may be replaced when dependencies are built.
