file(REMOVE_RECURSE
  "CMakeFiles/fd_scaling.dir/fd_scaling.cc.o"
  "CMakeFiles/fd_scaling.dir/fd_scaling.cc.o.d"
  "fd_scaling"
  "fd_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
