file(REMOVE_RECURSE
  "CMakeFiles/eq1_model.dir/eq1_model.cc.o"
  "CMakeFiles/eq1_model.dir/eq1_model.cc.o.d"
  "eq1_model"
  "eq1_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eq1_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
